// Benchmarks for the /v1/bulk streaming surface. The headline
// comparison is BenchmarkBulkThroughput (one NDJSON request resolving
// the whole 32768-network universe) against
// BenchmarkBulkSequentialBaseline (the same lookups as individual
// GET /v1/as round-trips): both report lines_per_sec into
// BENCH_serve.json, where the ratio is the bulk speedup.
//
//	go test -run=NONE -bench='Bulk' -benchtime=1x ./internal/serve/
package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// benchBulkServer builds an n-network snapshot and serves it over a
// real HTTP listener.
func benchBulkServer(b *testing.B, n int) (*Server, *httptest.Server) {
	b.Helper()
	snap, err := newSnapshotWorkers(benchBuilder(n).BuildSharded(benchNamer, 0),
		"bench", Health{}, time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC),
		runtime.GOMAXPROCS(0))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(snap, Options{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return srv, ts
}

// benchBulkBody renders lines NDJSON input lines cycling through ASNs
// 1..n.
func benchBulkBody(lines, n int) []byte {
	var buf bytes.Buffer
	buf.Grow(8 * lines)
	for i := 0; i < lines; i++ {
		buf.Write(strconv.AppendInt(buf.AvailableBuffer(), int64(i%n+1), 10))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// postBulk ships one prebuilt body and drains the response, returning
// the on-wire response size.
func postBulk(b *testing.B, client *http.Client, url string, body []byte, gzip bool) int64 {
	b.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/bulk", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if gzip {
		req.Header.Set("Accept-Encoding", "gzip")
	} else {
		// Pin identity encoding: the default transport would otherwise
		// negotiate and transparently decompress.
		req.Header.Set("Accept-Encoding", "identity")
	}
	resp, err := client.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("bulk status = %d", resp.StatusCode)
	}
	wire, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	return wire
}

// BenchmarkBulkThroughput resolves the whole 32768-network universe in
// one /v1/bulk request per op, over a real HTTP connection.
func BenchmarkBulkThroughput(b *testing.B) {
	const n = 32768
	_, ts := benchBulkServer(b, n)
	body := benchBulkBody(n, n)
	client := ts.Client()
	var wire int64
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire = postBulk(b, client, ts.URL, body, false)
	}
	b.StopTimer()
	linesPerSec := float64(n) * float64(b.N) / b.Elapsed().Seconds()
	recordBench(b, map[string]float64{
		"networks":      n,
		"lines":         n,
		"lines_per_sec": linesPerSec,
		"bytes_on_wire": float64(wire),
	})
}

// BenchmarkBulkSequentialBaseline is what /v1/bulk replaces: the same
// lookups as one GET /v1/as round-trip each, on a keep-alive
// connection. One op = one lookup, so lines_per_sec is ops/sec.
func BenchmarkBulkSequentialBaseline(b *testing.B) {
	const n = 32768
	_, ts := benchBulkServer(b, n)
	client := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(ts.URL + "/v1/as/" + strconv.Itoa(i%n+1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("as status = %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	recordBench(b, map[string]float64{
		"networks":      n,
		"lines_per_sec": float64(b.N) / b.Elapsed().Seconds(),
	})
}

// BenchmarkBulk1M is the acceptance-scale cell: one million input
// lines per request, cycling the 32768-network universe — the shape of
// an operator enriching a full routing table dump.
func BenchmarkBulk1M(b *testing.B) {
	const n = 32768
	const lines = 1 << 20
	_, ts := benchBulkServer(b, n)
	body := benchBulkBody(lines, n)
	client := ts.Client()
	var wire int64
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire = postBulk(b, client, ts.URL, body, false)
	}
	b.StopTimer()
	recordBench(b, map[string]float64{
		"networks":      n,
		"lines":         lines,
		"lines_per_sec": float64(lines) * float64(b.N) / b.Elapsed().Seconds(),
		"bytes_on_wire": float64(wire),
	})
}

// BenchmarkBulkGzip measures the compression trade on the 32768-line
// request: wire bytes drop several-fold, CPU per line rises. Compare
// bytes_on_wire with BenchmarkBulkThroughput's.
func BenchmarkBulkGzip(b *testing.B) {
	const n = 32768
	_, ts := benchBulkServer(b, n)
	body := benchBulkBody(n, n)
	// A bare client: the httptest default would decompress and hide
	// the wire size.
	client := &http.Client{}
	var wire int64
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire = postBulk(b, client, ts.URL, body, true)
	}
	b.StopTimer()
	recordBench(b, map[string]float64{
		"networks":      n,
		"lines":         n,
		"lines_per_sec": float64(n) * float64(b.N) / b.Elapsed().Seconds(),
		"bytes_on_wire": float64(wire),
	})
}
