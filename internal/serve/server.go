package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nu-aqualab/borges/internal/admission"
	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/mapdiff"
	"github.com/nu-aqualab/borges/internal/vfs"
)

// Source produces a fresh mapping for a (re)load: reading a JSONL file,
// re-running the pipeline in-process, or regenerating a synthetic
// corpus. It is called with the reload request's context.
type Source func(ctx context.Context) (*cluster.Mapping, error)

// FileSource returns a Source that parses a mapping file written with
// cluster.WriteJSONL (borges -format jsonl).
func FileSource(path string) Source {
	return func(ctx context.Context) (*cluster.Mapping, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return cluster.ReadJSONL(f)
	}
}

// HealthSource is a Source that also reports the produced mapping's
// health — how a pipeline-backed reload propagates a degraded run's
// RunReport status into the serving layer without the serve package
// knowing about the pipeline.
type HealthSource func(ctx context.Context) (*cluster.Mapping, Health, error)

// DeltaSource produces the mapping delta a delta reload applies to
// the serving snapshot — typically by parsing a JSONL delta file
// written by borges-diff -delta (mapdiff.ReadDelta).
type DeltaSource func(ctx context.Context) (*mapdiff.Delta, error)

// DeltaFileSource returns a DeltaSource parsing a JSONL delta file.
func DeltaFileSource(path string) DeltaSource {
	return func(ctx context.Context) (*mapdiff.Delta, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return mapdiff.ReadDelta(f)
	}
}

// Options tune a Server.
type Options struct {
	// Source supplies replacement mappings for /admin/reload. With a
	// nil Source (and nil HealthSource and nil Prepared), reloads are
	// rejected with 501 Not Implemented.
	Source Source
	// HealthSource, when non-nil, is preferred over Source and lets
	// each reload attach the producing run's Health to the snapshot it
	// publishes.
	HealthSource HealthSource
	// Prepared, when non-nil, is preferred over both Source and
	// HealthSource: it delivers a ready-made snapshot (e.g. decoded
	// from a snapbin binary artifact by SnapshotFileSource), skipping
	// the in-server rebuild entirely.
	Prepared PreparedSource
	// DeltaSource supplies mapping deltas for /admin/reload?mode=delta.
	// Nil rejects delta reloads with 501 Not Implemented.
	DeltaSource DeltaSource
	// RequestTimeout bounds each request's handling time (default 10s).
	RequestTimeout time.Duration
	// Logf receives one structured line per request and per reload.
	// Nil disables request logging.
	Logf func(format string, args ...any)
	// BuildWorkers caps the number of workers used to index and
	// pre-render a reloaded snapshot (0 = GOMAXPROCS). Lowering it
	// trades reload latency for less CPU contention with serving
	// traffic during the rebuild.
	BuildWorkers int
	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/. Off by default: the profiling surface exposes heap
	// and goroutine internals and should only be reachable when the
	// operator asks for it. CPU profile captures are bounded by the
	// server's write timeout (2× RequestTimeout), so pass
	// ?seconds= values below that.
	EnablePprof bool
	// Admission enables overload protection (adaptive concurrency
	// limiting, per-client rate limiting, priority shedding, search
	// brownout) when non-nil with MaxInflight > 0. Nil accepts
	// everything — the pre-admission behaviour.
	Admission *admission.Config
	// BulkMaxLines caps the number of input lines one /v1/bulk request
	// may carry (default 1<<20). The cap bounds how long a single
	// stream can hold its admission slot; past it the response ends
	// with a terminal error line.
	BulkMaxLines int
	// MaxBodyBytes bounds every request body the server reads
	// (default 64 MiB), enforced with http.MaxBytesReader.
	MaxBodyBytes int64
	// WatchBuffer is the per-subscriber event queue depth for
	// /v1/watch (default 64). A subscriber whose queue is full when a
	// reload publishes is evicted rather than allowed to block the
	// swap or balloon memory.
	WatchBuffer int
	// OnSwap, when non-nil, observes every successfully published
	// snapshot — the initial one is not reported, only reload swaps.
	// It runs with the reload latch held (swaps are serialized), so a
	// slow callback delays subsequent reloads, never lookups. Fleet
	// distributors use it to publish artifacts; -snapshot-out uses it
	// to persist the latest snapshot for the next cold start.
	OnSwap func(*Snapshot)
	// ExtraMetrics, when non-nil, appends additional Prometheus text
	// blocks to every /metrics response after the server's own series —
	// how the fleet layer exports borgesd_fleet_* without the serve
	// package knowing about it.
	ExtraMetrics func(io.Writer)
	// Canary tunes the pre-promotion check gating every snapshot swap.
	// The zero value is on with defaults; set Canary.Disable to promote
	// unchecked.
	Canary CanaryConfig
	// Generations, when non-nil, records every published snapshot into
	// an on-disk ring of verified artifacts, enables POST
	// /admin/rollback, and exposes lineage in /v1/stats.
	Generations *GenerationRing
	// SnapshotOut, when non-empty, persists every published snapshot as
	// a snapbin artifact at this path (the next cold start's
	// -snapshot-in). Persistence is best-effort: a failed write is
	// logged and counted (borgesd_snapshot_persist_errors_total) but
	// never fails or blocks the swap.
	SnapshotOut string
	// FS is the filesystem SnapshotOut persistence and the snapshot-out
	// scrub target use (nil = the real one). Chaos tests substitute a
	// faultinject filesystem.
	FS vfs.FS
	// ScrubInterval enables the background integrity scrubber: every
	// interval the server re-verifies the generation ring, the
	// SnapshotOut artifact, and every ScrubTargets entry, then probes
	// the serving snapshot and auto-rolls back to the newest verified
	// generation if the probe fails. 0 disables the loop (ScrubOnce
	// still works on demand).
	ScrubInterval time.Duration
	// ScrubTargets adds caller-owned stores to the scrub cycle — the
	// fleet replica registers its last-good artifact here.
	ScrubTargets []ScrubTarget
	// HealthProbe, when non-nil, replaces the default post-scrub probe
	// (the canary re-run against the serving snapshot).
	HealthProbe func(*Snapshot) error
	// now overrides the clock in tests.
	now func() time.Time
	// testHold, when set, is called with the endpoint name after
	// admission but before the handler runs. Load tests use it to pin
	// admitted requests in-flight deterministically.
	testHold func(endpoint string)
}

// Server serves an AS-to-Organization snapshot over HTTP. The current
// Snapshot sits behind an atomic pointer: request handlers load it once
// and serve the whole request from that immutable view, so a concurrent
// reload never tears a response or drops an in-flight request.
type Server struct {
	snap    atomic.Pointer[Snapshot]
	metrics *Metrics
	opts    Options
	mux     *http.ServeMux
	// admission is the overload-protection layer (nil = disabled). It
	// lives on the Server, not the Snapshot: limiter state, client
	// buckets, and shed counters survive hot reloads by construction.
	admission *admission.Controller
	// reloading serializes reloads so concurrent /admin/reload posts
	// cannot interleave validate-then-swap sequences.
	reloading chan struct{}
	// watch fans snapshot-change events out to /v1/watch subscribers.
	// Like admission it lives on the Server: subscriptions survive hot
	// reloads — reloads are exactly what they exist to observe.
	watch *watchHub
}

// NewServer returns a Server publishing the given initial snapshot.
func NewServer(snap *Snapshot, opts Options) (*Server, error) {
	if snap == nil {
		return nil, fmt.Errorf("serve: nil initial snapshot")
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 10 * time.Second
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	if opts.BulkMaxLines <= 0 {
		opts.BulkMaxLines = defaultBulkMaxLines
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = defaultMaxBodyBytes
	}
	if opts.WatchBuffer <= 0 {
		opts.WatchBuffer = defaultWatchBuffer
	}
	s := &Server{
		metrics:   NewMetrics(),
		opts:      opts,
		mux:       http.NewServeMux(),
		reloading: make(chan struct{}, 1),
	}
	s.watch = newWatchHub(opts.WatchBuffer)
	if opts.Admission != nil && opts.Admission.MaxInflight > 0 {
		cfg := *opts.Admission
		if cfg.Now == nil {
			cfg.Now = opts.now
		}
		s.admission = admission.New(cfg)
	}
	s.snap.Store(snap)
	s.mux.HandleFunc("GET /v1/as/{asn}", s.instrument("as", admission.Point, s.handleAS))
	s.mux.HandleFunc("GET /v1/org/{id}", s.instrument("org", admission.Point, s.handleOrg))
	s.mux.HandleFunc("GET /v1/search", s.instrument("search", admission.Search, s.handleSearch))
	s.mux.HandleFunc("GET /v1/stats", s.instrument("stats", admission.Point, s.handleStats))
	// Bulk and watch are streaming endpoints: instrumented without the
	// per-request timeout (a 1M-line bulk stream or a long-lived watch
	// would be killed by it; both bound themselves instead — bulk by
	// MaxBodyBytes/BulkMaxLines, watch by client disconnect/shutdown).
	s.mux.HandleFunc("POST /v1/bulk", s.instrumentStreaming("bulk", admission.Bulk, s.handleBulk))
	s.mux.HandleFunc("GET /v1/watch", s.instrumentStreaming("watch", admission.Critical, s.handleWatch))
	s.mux.HandleFunc("POST /admin/reload", s.instrument("reload", admission.Critical, s.handleReload))
	s.mux.HandleFunc("POST /admin/rollback", s.instrument("rollback", admission.Critical, s.handleRollback))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", admission.Critical, s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opts.EnablePprof {
		// Mounted directly on the mux, not via instrument: the
		// per-request timeout would cut off long CPU/trace captures, and
		// profiler hits should not skew the service's latency metrics.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Snapshot returns the currently served snapshot.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// pinnedSnapshot loads the serving snapshot with a read reference held
// on its body backing (a nil check for heap-backed snapshots). The
// retry loop terminates: Pin only fails after a snapshot was retired,
// which happens strictly after its replacement was stored, so a
// re-load observes the newer snapshot.
func (s *Server) pinnedSnapshot() *Snapshot {
	for {
		snap := s.snap.Load()
		if snap.Pin() {
			return snap
		}
	}
}

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Admission returns the overload-protection controller, or nil when
// admission control is disabled.
func (s *Server) Admission() *admission.Controller { return s.admission }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Reload pulls a replacement snapshot from the configured source —
// Prepared (ready-made, e.g. a binary artifact) when set, otherwise a
// mapping from HealthSource/Source indexed in-server — validates it,
// and atomically publishes the result. On any error the previous
// snapshot keeps serving.
func (s *Server) Reload(ctx context.Context) (*Snapshot, error) {
	prepare := s.prepareFunc()
	if prepare == nil {
		return nil, fmt.Errorf("serve: no reload source configured")
	}
	return s.swapWith(ctx, prepare, nil)
}

// ReloadDelta pulls a mapping delta from the configured DeltaSource,
// patches the serving snapshot incrementally, and publishes the
// result under the same validate-then-swap discipline as Reload. A
// delta computed against a different base fails with ErrDeltaMismatch
// and leaves the current snapshot serving.
func (s *Server) ReloadDelta(ctx context.Context) (*Snapshot, error) {
	if s.opts.DeltaSource == nil {
		return nil, fmt.Errorf("serve: no delta source configured")
	}
	// The parsed delta doubles as the /v1/watch event payload: a delta
	// reload already knows its exact edit script, so the watch fan-out
	// is free — no ComputeDelta diff pass.
	var applied *mapdiff.Delta
	return s.swapWith(ctx, func(ctx context.Context, old *Snapshot) (*Snapshot, error) {
		d, err := s.opts.DeltaSource(ctx)
		if err != nil {
			return nil, err
		}
		next, err := old.applyDeltaAt(d, s.opts.now())
		if err == nil {
			applied = d
		}
		return next, err
	}, func() *mapdiff.Delta { return applied })
}

// prepareFunc resolves the configured reload options into one
// function producing a validated replacement snapshot, or nil when no
// source is configured.
func (s *Server) prepareFunc() func(ctx context.Context, old *Snapshot) (*Snapshot, error) {
	if s.opts.Prepared != nil {
		return func(ctx context.Context, _ *Snapshot) (*Snapshot, error) {
			return s.opts.Prepared(ctx)
		}
	}
	load := s.opts.HealthSource
	if load == nil && s.opts.Source != nil {
		src := s.opts.Source
		load = func(ctx context.Context) (*cluster.Mapping, Health, error) {
			m, err := src(ctx)
			return m, Health{Status: HealthOK}, err
		}
	}
	if load == nil {
		return nil
	}
	return func(ctx context.Context, old *Snapshot) (*Snapshot, error) {
		m, health, err := load(ctx)
		if err != nil {
			return nil, err
		}
		workers := s.opts.BuildWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		return newSnapshotWorkers(m, old.Source(), health, s.opts.now(), workers)
	}
}

// swapWith runs one serialized validate-then-swap sequence: prepare a
// replacement off to the side, publish it only if it validated, and
// record the load duration and outcome. deltaHint, when non-nil and
// returning non-nil, supplies the already-known edit script for the
// /v1/watch fan-out (a delta reload parsed one anyway); otherwise the
// delta is computed here iff someone is watching.
func (s *Server) swapWith(ctx context.Context, prepare func(ctx context.Context, old *Snapshot) (*Snapshot, error), deltaHint func() *mapdiff.Delta) (*Snapshot, error) {
	select {
	case s.reloading <- struct{}{}:
		defer func() { <-s.reloading }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	old := s.snap.Load()
	start := s.opts.now()
	next, err := prepare(ctx, old)
	if err == nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	if err == nil {
		// The canary gates promotion: the candidate replays a
		// deterministic sample of lookups and searches before it is ever
		// reachable from a serving path. A hash-valid but logically
		// poisoned artifact dies here, not in production traffic.
		if cerr := canaryCheck(next, old, s.opts.Canary); cerr != nil {
			s.metrics.ObserveCanaryReject()
			err = cerr
		}
	}
	if err != nil {
		// A candidate that was prepared but refused promotion (canary
		// reject, late cancellation) releases its mapping now.
		if next != nil && next != old {
			next.retire()
		}
		s.metrics.ObserveReload(false)
		s.logf(`{"event":"reload","ok":false,"error":%q}`, err.Error())
		return nil, err
	}
	s.snap.Store(next)
	if s.watch.active() {
		delta := (*mapdiff.Delta)(nil)
		if deltaHint != nil {
			delta = deltaHint()
		}
		if delta == nil {
			delta = mapdiff.ComputeDelta(old.Mapping(), next.Mapping())
		}
		s.watch.publish(next, delta)
	}
	if s.opts.OnSwap != nil {
		s.opts.OnSwap(next)
	}
	s.persistSwap(next)
	d := s.opts.now().Sub(start)
	s.metrics.ObserveReload(true)
	s.metrics.ObserveLoad(next.LoadMode(), d)
	s.logf(`{"event":"reload","ok":true,"mode":%q,"hash":%q,"health":%q,"orgs":%d,"asns":%d,"theta":%.6f,"load_us":%d}`,
		next.LoadMode(), next.ContentHash(), next.Health().Status,
		next.Stats().Orgs, next.Stats().ASNs, next.Stats().Theta, d.Microseconds())
	// The outgoing snapshot's store reference drops only after every
	// post-swap consumer (watch fan-out, OnSwap, persistence) is done
	// with it; if it was memory-mapped, munmap waits further for
	// in-flight pinned requests to drain.
	if old != next {
		old.retire()
	}
	return next, nil
}

// persistSwap records the freshly published snapshot into the
// generation ring and the SnapshotOut artifact. Both are durability,
// not correctness: the swap already happened, so a failed write —
// disk full, torn write, fsync error — is logged and counted, and the
// server keeps serving. It runs with the reload latch held, like
// OnSwap.
func (s *Server) persistSwap(next *Snapshot) {
	if ring := s.opts.Generations; ring != nil {
		if gen, err := ring.Record(next, s.opts.now()); err != nil {
			s.metrics.ObservePersistError()
			s.logf(`{"event":"generation_record","ok":false,"error":%q}`, err.Error())
		} else {
			_ = gen
		}
	}
	if s.opts.SnapshotOut != "" {
		if _, err := WriteSnapshotFileFS(s.fs(), s.opts.SnapshotOut, next); err != nil {
			s.metrics.ObservePersistError()
			s.logf(`{"event":"snapshot_persist","ok":false,"path":%q,"error":%q}`, s.opts.SnapshotOut, err.Error())
		} else {
			s.logf(`{"event":"snapshot_persist","ok":true,"path":%q,"hash":%q}`, s.opts.SnapshotOut, next.ContentHash())
		}
	}
}

func (s *Server) fs() vfs.FS { return vfs.Or(s.opts.FS) }

// Rollback swaps the serving snapshot back to the newest verified
// generation whose hash differs from the one serving now. The target
// is fully re-decoded and hash-verified on the way in, passes the same
// canary as any other swap, and is recorded as a new generation —
// lineage shows the rollback rather than silently rewriting history.
// trigger labels the rollback metric ("admin" or "auto").
func (s *Server) Rollback(ctx context.Context, trigger string) (*Snapshot, Generation, error) {
	ring := s.opts.Generations
	if ring == nil {
		return nil, Generation{}, fmt.Errorf("serve: no generation ring configured")
	}
	var gen Generation
	snap, err := s.swapWith(ctx, func(ctx context.Context, old *Snapshot) (*Snapshot, error) {
		next, g, err := ring.PreviousVerified(old.ContentHash())
		if err != nil {
			return nil, err
		}
		gen = g
		return next, nil
	}, nil)
	if err != nil {
		return nil, Generation{}, err
	}
	s.metrics.ObserveRollback(trigger)
	s.logf(`{"event":"rollback","trigger":%q,"seq":%d,"hash":%q}`, trigger, gen.Seq, gen.Hash)
	return snap, gen, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer so http.NewResponseController
// can reach Flush/SetReadDeadline/SetWriteDeadline on the streaming
// endpoints.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Flush forwards to the underlying writer when it supports flushing,
// so streaming handlers can push chunks through the statusWriter.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with admission control, the per-request
// timeout, metrics observation, and structured request logging.
func (s *Server) instrument(endpoint string, class admission.Class, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		start := s.opts.now()
		sw := &statusWriter{ResponseWriter: w}
		if s.admission != nil {
			release, dec := s.admission.Admit(ctx, class, clientKey(r))
			if !dec.Admitted {
				writeRetryableError(sw, dec.Status, dec.RetryAfter,
					"overloaded: request shed (%s), retry later", dec.Reason)
				s.metrics.ObserveShed(endpoint, sw.status)
				s.logf(`{"event":"shed","endpoint":%q,"class":%q,"reason":%q,"status":%d,"retry_after_s":%d}`,
					endpoint, class, dec.Reason, sw.status, int(dec.RetryAfter.Seconds()))
				return
			}
			defer func() { release(s.opts.now().Sub(start)) }()
		}
		if s.opts.testHold != nil {
			s.opts.testHold(endpoint)
		}
		h(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		d := s.opts.now().Sub(start)
		s.metrics.Observe(endpoint, sw.status, d)
		s.logf(`{"event":"request","endpoint":%q,"method":%q,"path":%q,"status":%d,"duration_us":%d}`,
			endpoint, r.Method, r.URL.RequestURI(), sw.status, d.Microseconds())
	}
}

// instrumentStreaming is instrument for endpoints whose response is a
// stream (/v1/bulk, /v1/watch): same admission, metrics, and logging,
// but no per-request timeout — a bulk pass over a million lines or a
// watch held open for hours is the intended behaviour, not a hung
// request. The handlers bound themselves (body size caps, line caps,
// hub shutdown) and extend the connection's read/write deadlines as
// they make progress.
func (s *Server) instrumentStreaming(endpoint string, class admission.Class, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.opts.now()
		sw := &statusWriter{ResponseWriter: w}
		if s.admission != nil {
			release, dec := s.admission.Admit(r.Context(), class, clientKey(r))
			if !dec.Admitted {
				writeRetryableError(sw, dec.Status, dec.RetryAfter,
					"overloaded: request shed (%s), retry later", dec.Reason)
				s.metrics.ObserveShed(endpoint, sw.status)
				s.logf(`{"event":"shed","endpoint":%q,"class":%q,"reason":%q,"status":%d,"retry_after_s":%d}`,
					endpoint, class, dec.Reason, sw.status, int(dec.RetryAfter.Seconds()))
				return
			}
			defer func() { release(s.opts.now().Sub(start)) }()
		}
		if s.opts.testHold != nil {
			s.opts.testHold(endpoint)
		}
		h(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		d := s.opts.now().Sub(start)
		s.metrics.Observe(endpoint, sw.status, d)
		s.logf(`{"event":"request","endpoint":%q,"method":%q,"path":%q,"status":%d,"duration_us":%d}`,
			endpoint, r.Method, r.URL.RequestURI(), sw.status, d.Microseconds())
	}
}

// clientKey identifies the client for per-client rate limiting: the
// X-Api-Key header when present (one key can span hosts), otherwise
// the connection's remote IP with the port stripped (ports churn per
// connection and would defeat the bucket).
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-Api-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "ip:" + host
}

// orgJSON is the wire form of one organization.
type orgJSON struct {
	Org      int      `json:"org"`
	Name     string   `json:"name,omitempty"`
	Size     int      `json:"size"`
	ASNs     []uint32 `json:"asns"`
	Features []string `json:"features,omitempty"`
}

func orgToJSON(c *cluster.Cluster) orgJSON {
	out := orgJSON{
		Org:      c.ID,
		Name:     c.Name,
		Size:     c.Size(),
		ASNs:     make([]uint32, len(c.ASNs)),
		Features: FeatureNames(c),
	}
	for i, a := range c.ASNs {
		out.ASNs[i] = uint32(a)
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeRetryableError is writeError for statuses that invite a retry:
// every 429/503 this server produces carries a Retry-After header
// (whole seconds, the format internal/llm/openai parses back into a
// typed hint on the client side) so well-behaved callers back off
// instead of hammering an overloaded or mid-reload daemon.
func writeRetryableError(w http.ResponseWriter, status int, after time.Duration, format string, args ...any) {
	secs := int(after / time.Second)
	if after%time.Second > 0 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, status, format, args...)
}

// respBufPool recycles /v1/as response buffers: the body is assembled
// from the snapshot's pre-rendered bytes in a pooled scratch slice, so
// the point-lookup hot path performs no per-request allocation.
var respBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

func (s *Server) handleAS(w http.ResponseWriter, r *http.Request) {
	a, err := asnum.Parse(r.PathValue("asn"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid ASN %q", r.PathValue("asn"))
		return
	}
	snap := s.pinnedSnapshot()
	defer snap.Unpin()
	bp := respBufPool.Get().(*[]byte)
	body, ok := snap.AppendASBody((*bp)[:0], a)
	if !ok {
		respBufPool.Put(bp)
		writeError(w, http.StatusNotFound, "%s is not in the mapping", a)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	*bp = body[:0]
	respBufPool.Put(bp)
}

func (s *Server) handleOrg(w http.ResponseWriter, r *http.Request) {
	// strconv.Atoi, not Sscanf: "%d" stops at the first non-digit and
	// would silently accept "7abc" as 7.
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid organization id %q", r.PathValue("id"))
		return
	}
	snap := s.pinnedSnapshot()
	defer snap.Unpin()
	body := snap.OrgBody(id)
	if body == nil {
		writeError(w, http.StatusNotFound, "organization %d is not in the mapping", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// maxSearchLimit is the server-side ceiling on ?limit=: a single
// search may not ask for an unbounded result set no matter what the
// client requests.
const maxSearchLimit = 500

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("name")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing ?name= query")
		return
	}
	limit := 50
	if ls := r.URL.Query().Get("limit"); ls != "" {
		// strconv.Atoi, not Sscanf: "%d" stops at the first non-digit
		// and would silently accept "50abc" as 50.
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "invalid ?limit=%q", ls)
			return
		}
		limit = n
	}
	if limit > maxSearchLimit {
		limit = maxSearchLimit
	}
	snap := s.snap.Load()
	var (
		hits     []*cluster.Cluster
		brownout bool
	)
	if s.admission != nil {
		if capLimit, active := s.admission.BrownoutSearch(); active {
			brownout = true
			if limit > capLimit {
				limit = capLimit
			}
			hits = snap.SearchBrownout(q, limit)
		}
	}
	if !brownout {
		hits = snap.Search(q, limit)
	}
	out := struct {
		Query    string    `json:"query"`
		Brownout bool      `json:"brownout,omitempty"`
		Matches  []orgJSON `json:"matches"`
	}{Query: q, Brownout: brownout, Matches: make([]orgJSON, len(hits))}
	for i, c := range hits {
		out.Matches[i] = orgToJSON(c)
	}
	// Only the (potentially large) result body is worth compressing;
	// the error paths above stay identity-encoded.
	if gz := negotiateGzip(w, r); gz != nil {
		defer finishGzip(w, gz)
		w = &gzipResponseWriter{ResponseWriter: w, gz: gz}
	}
	writeJSON(w, http.StatusOK, out)
}

// bucketJSON is the wire form of one histogram bucket.
type bucketJSON struct {
	Size string `json:"size"`
	Orgs int    `json:"orgs"`
}

// lineageJSON is the wire form of the generation ring's state in
// /v1/stats: where the serving content could roll back to.
type lineageJSON struct {
	KeepGenerations int          `json:"keep_generations"`
	Quarantined     int64        `json:"quarantined_total"`
	Generations     []Generation `json:"generations"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	st := snap.Stats()
	hist := make([]bucketJSON, len(st.SizeHistogram))
	for i, b := range st.SizeHistogram {
		hist[i] = bucketJSON{Size: b.Label(), Orgs: b.Orgs}
	}
	var lineage *lineageJSON
	if ring := s.opts.Generations; ring != nil {
		lineage = &lineageJSON{
			KeepGenerations: ring.Keep(),
			Quarantined:     ring.QuarantinedTotal(),
			Generations:     ring.Generations(),
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Orgs          int          `json:"orgs"`
		ASNs          int          `json:"asns"`
		Theta         float64      `json:"theta"`
		MultiASOrgs   int          `json:"multi_as_orgs"`
		LargestOrg    int          `json:"largest_org"`
		SizeHistogram []bucketJSON `json:"size_histogram"`
		Source        string       `json:"source"`
		LoadedAt      time.Time    `json:"loaded_at"`
		AgeSeconds    float64      `json:"age_seconds"`
		Health        Health       `json:"health"`
		LoadMode      string       `json:"load_mode"`
		ContentHash   string       `json:"content_hash"`
		Lineage       *lineageJSON `json:"lineage,omitempty"`
	}{
		Orgs: st.Orgs, ASNs: st.ASNs, Theta: st.Theta,
		MultiASOrgs: st.MultiASOrgs, LargestOrg: st.LargestOrg,
		SizeHistogram: hist, Source: snap.Source(),
		LoadedAt:    snap.LoadedAt().UTC(),
		AgeSeconds:  s.opts.now().Sub(snap.LoadedAt()).Seconds(),
		Health:      snap.Health(),
		LoadMode:    snap.LoadMode(),
		ContentHash: snap.ContentHash(),
		Lineage:     lineage,
	})
}

// handleReload serves POST /admin/reload. ?mode=delta patches the
// serving snapshot from the configured DeltaSource; the default (or
// ?mode=full) replaces it from the configured snapshot source. The
// response carries the published snapshot's content hash and load
// mode so a fleet orchestrator can verify cross-replica consistency
// from the reload call itself.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	// Reload takes no body today, but cap anything a client posts so
	// every body-reading path is bounded.
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var snap *Snapshot
	var err error
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "full":
		if s.opts.Source == nil && s.opts.HealthSource == nil && s.opts.Prepared == nil {
			writeError(w, http.StatusNotImplemented, "no reload source configured")
			return
		}
		snap, err = s.Reload(r.Context())
	case "delta":
		if s.opts.DeltaSource == nil {
			writeError(w, http.StatusNotImplemented, "no delta source configured")
			return
		}
		snap, err = s.ReloadDelta(r.Context())
	default:
		writeError(w, http.StatusBadRequest, "unknown reload mode %q", mode)
		return
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeRetryableError(w, http.StatusServiceUnavailable, time.Second,
				"reload failed: %v", err)
			return
		}
		status := http.StatusInternalServerError
		if errors.Is(err, ErrDeltaMismatch) {
			// The delta's base disagrees with the serving snapshot —
			// the client should retry with a full artifact, not the
			// same delta.
			status = http.StatusConflict
		}
		if errors.Is(err, ErrCanaryRejected) {
			// The artifact decoded but failed live invariants; the same
			// bytes will fail again — the caller needs a new artifact.
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, "reload failed: %v", err)
		return
	}
	st := snap.Stats()
	writeJSON(w, http.StatusOK, struct {
		Status      string  `json:"status"`
		Orgs        int     `json:"orgs"`
		ASNs        int     `json:"asns"`
		Theta       float64 `json:"theta"`
		LoadMode    string  `json:"load_mode"`
		ContentHash string  `json:"content_hash"`
	}{
		Status: "ok", Orgs: st.Orgs, ASNs: st.ASNs, Theta: st.Theta,
		LoadMode: snap.LoadMode(), ContentHash: snap.ContentHash(),
	})
}

// handleRollback serves POST /admin/rollback: swap the serving
// snapshot back to the newest verified generation. 501 without a
// generation ring, 409 when no other verified generation exists, 422
// when the rollback target itself fails the canary.
func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if s.opts.Generations == nil {
		writeError(w, http.StatusNotImplemented, "no generation ring configured (-keep-generations)")
		return
	}
	snap, gen, err := s.Rollback(r.Context(), "admin")
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrNoVerifiedGeneration):
			status = http.StatusConflict
		case errors.Is(err, ErrCanaryRejected):
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, "rollback failed: %v", err)
		return
	}
	st := snap.Stats()
	writeJSON(w, http.StatusOK, struct {
		Status      string  `json:"status"`
		Seq         uint64  `json:"generation"`
		ContentHash string  `json:"content_hash"`
		Orgs        int     `json:"orgs"`
		ASNs        int     `json:"asns"`
		Theta       float64 `json:"theta"`
	}{
		Status: "rolled-back", Seq: gen.Seq, ContentHash: snap.ContentHash(),
		Orgs: st.Orgs, ASNs: st.ASNs, Theta: st.Theta,
	})
}

// handleHealthz reports liveness plus the snapshot's provenance
// health. A degraded snapshot still answers 200 — the daemon is up and
// serving; "degraded" tells orchestrators the mapping behind it was
// built under faults, which is a quality signal, not an outage.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	h := snap.Health()
	writeJSON(w, http.StatusOK, struct {
		Status      string  `json:"status"`
		AgeSeconds  float64 `json:"snapshot_age_seconds"`
		Quarantined int     `json:"quarantined,omitempty"`
		Detail      string  `json:"detail,omitempty"`
	}{
		Status:      h.Status,
		AgeSeconds:  s.opts.now().Sub(snap.LoadedAt()).Seconds(),
		Quarantined: h.Quarantined,
		Detail:      h.Detail,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteTo(w, s.snap.Load(), s.opts.now())
	if ring := s.opts.Generations; ring != nil {
		fmt.Fprintf(w, "# HELP borgesd_snapshot_generations Verified snapshot generations held by the rollback ring.\n")
		fmt.Fprintf(w, "# TYPE borgesd_snapshot_generations gauge\n")
		fmt.Fprintf(w, "borgesd_snapshot_generations %d\n", ring.Len())
		fmt.Fprintf(w, "# HELP borgesd_generations_quarantined_total Ring artifacts quarantined as corrupt (renamed to .corrupt).\n")
		fmt.Fprintf(w, "# TYPE borgesd_generations_quarantined_total counter\n")
		fmt.Fprintf(w, "borgesd_generations_quarantined_total %d\n", ring.QuarantinedTotal())
	}
	s.watch.writeMetrics(w)
	writeMemMetrics(w)
	if s.admission != nil {
		s.admission.WriteMetrics(w)
	}
	if s.opts.ExtraMetrics != nil {
		s.opts.ExtraMetrics(w)
	}
}

// Serve listens on addr and serves snap until ctx is cancelled, then
// shuts down gracefully (in-flight requests get up to the request
// timeout to finish). It is the one-call entry point the borgesd daemon
// and the facade use.
func Serve(ctx context.Context, addr string, snap *Snapshot, opts Options) error {
	srv, err := NewServer(snap, opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return srv.ServeListener(ctx, ln)
}

// ServeListener serves on an existing listener until ctx is cancelled.
func (s *Server) ServeListener(ctx context.Context, ln net.Listener) error {
	return s.ServeHandler(ctx, ln, s.Handler())
}

// ServeHandler is ServeListener with a caller-supplied handler —
// typically the server's own Handler wrapped with extra routes (the
// fleet distributor mounts /fleet/* this way). Shutdown discipline is
// identical: the watch hub closes first so SSE streams end, then
// in-flight requests drain.
func (s *Server) ServeHandler(ctx context.Context, ln net.Listener, handler http.Handler) error {
	// No BaseContext wiring ctx into requests: cancellation must stop
	// accepting, not kill in-flight requests — Shutdown drains them.
	// The read/write timeouts bound a whole connection's I/O; the
	// streaming endpoints (/v1/bulk, /v1/watch) extend their deadlines
	// per chunk via http.ResponseController, so a legitimate long
	// stream outlives them while a stalled peer still gets cut off.
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       s.opts.RequestTimeout,
		WriteTimeout:      2 * s.opts.RequestTimeout,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	if s.opts.ScrubInterval > 0 {
		// The scrubber shares the server's lifetime: it stops accepting
		// work when the listener does. ScrubOnce remains callable for
		// on-demand cycles regardless.
		go s.scrubLoop(ctx)
	}
	s.logf(`{"event":"listening","addr":%q}`, ln.Addr().String())
	select {
	case <-ctx.Done():
		// Close the watch hub first: Shutdown waits for in-flight
		// requests, and a watch subscriber is in-flight until its event
		// channel closes. Closing the hub ends every stream cleanly
		// (after delivering anything already queued), so the drain
		// below terminates.
		s.watch.close()
		shutCtx, cancel := context.WithTimeout(context.Background(), s.opts.RequestTimeout)
		defer cancel()
		err := hs.Shutdown(shutCtx)
		<-errc // always http.ErrServerClosed after Shutdown
		s.logf(`{"event":"shutdown","ok":%v}`, err == nil)
		return err
	case err := <-errc:
		return err
	}
}
