package serve

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/snapbin"
	"github.com/nu-aqualab/borges/internal/vfs"
)

// This file bridges Snapshot and the snapbin binary artifact format:
// image() flattens a snapshot into the portable snapbin.Image,
// WriteSnapshot/WriteSnapshotFile persist it, and LoadSnapshot/
// LoadSnapshotFile reconstruct a serving snapshot from the decoded
// sections — a few large reads plus slicing, no union-find replay, no
// re-tokenization, no re-rendering.

// image flattens the snapshot into its portable binary form. The
// returned image aliases the snapshot's slices; callers must not
// mutate it.
func (s *Snapshot) image() *snapbin.Image {
	keys, vals := s.mapping.RawIndex()
	img := &snapbin.Image{
		Source:       s.source,
		LoadedAt:     s.loadedAt,
		HealthStatus: s.health.Status,
		Quarantined:  s.health.Quarantined,
		HealthDetail: s.health.Detail,
		Theta:        s.stats.Theta,
		MultiASOrgs:  s.stats.MultiASOrgs,
		LargestOrg:   s.stats.LargestOrg,
		Clusters:     s.mapping.Clusters,
		Keys:         keys,
		Vals:         vals,
		LowerNames:   s.lowerNames,
		Tokens:       s.tokenList,
		OrgBodies:    s.orgBodies,
		ASTails:      s.asTails,
	}
	img.Histogram = make([]snapbin.Bucket, len(s.stats.SizeHistogram))
	for i, b := range s.stats.SizeHistogram {
		img.Histogram[i] = snapbin.Bucket{Lo: b.Lo, Hi: b.Hi, Orgs: b.Orgs}
	}
	img.Postings = make([][]int32, len(s.tokenList))
	for i, tok := range s.tokenList {
		ids := s.tokens[tok]
		ps := make([]int32, len(ids))
		for j, id := range ids {
			ps[j] = int32(id)
		}
		img.Postings[i] = ps
	}
	return img
}

// snapshotFromImage reconstructs a serving snapshot from a decoded,
// hash-verified image. cluster.Restore re-verifies index↔membership
// correspondence, so a snapshot assembled here can never answer a
// lookup its clusters disagree with.
func snapshotFromImage(img *snapbin.Image, hash string) (*Snapshot, error) {
	m, err := cluster.Restore(img.Clusters, img.Keys, img.Vals)
	if err != nil {
		return nil, fmt.Errorf("serve: binary snapshot: %w", err)
	}
	if m.NumASNs() == 0 || m.NumOrgs() == 0 {
		return nil, fmt.Errorf("serve: refusing to serve an empty mapping (%d orgs, %d networks)",
			m.NumOrgs(), m.NumASNs())
	}
	health := Health{
		Status:      img.HealthStatus,
		Quarantined: img.Quarantined,
		Detail:      img.HealthDetail,
	}
	if health.Status == "" {
		health.Status = HealthOK
	}
	n := len(m.Clusters)
	s := &Snapshot{
		mapping:     m,
		lowerNames:  img.LowerNames,
		orgBodies:   img.OrgBodies,
		asTails:     img.ASTails,
		source:      img.Source,
		loadedAt:    img.LoadedAt,
		health:      health,
		loadMode:    LoadModeBinary,
		contentHash: hash,
	}
	s.scratchPool.New = func() any {
		return &searchScratch{bits: make([]uint64, (n+63)/64)}
	}
	s.tokenList = img.Tokens
	s.tokens = make(map[string][]int, len(img.Tokens))
	for i, tok := range img.Tokens {
		ids := make([]int, len(img.Postings[i]))
		for j, id := range img.Postings[i] {
			ids[j] = int(id)
		}
		s.tokens[tok] = ids
	}
	s.stats = Stats{
		Orgs:        m.NumOrgs(),
		ASNs:        m.NumASNs(),
		Theta:       img.Theta,
		MultiASOrgs: img.MultiASOrgs,
		LargestOrg:  img.LargestOrg,
	}
	s.stats.SizeHistogram = make([]SizeBucket, len(img.Histogram))
	for i, b := range img.Histogram {
		s.stats.SizeHistogram[i] = SizeBucket{Lo: b.Lo, Hi: b.Hi, Orgs: b.Orgs}
	}
	return s, nil
}

// WriteSnapshot encodes the snapshot as a snapbin artifact and
// returns its content hash.
func WriteSnapshot(w io.Writer, s *Snapshot) (string, error) {
	return snapbin.Encode(w, s.image())
}

// WriteSnapshotFile atomically persists the snapshot as a snapbin
// artifact at path (temp file, fsync, rename) and returns its content
// hash.
func WriteSnapshotFile(path string, s *Snapshot) (string, error) {
	return snapbin.WriteFile(path, s.image())
}

// WriteSnapshotFileFS is WriteSnapshotFile against an explicit
// filesystem — the seam the generation ring and the disk-chaos suites
// thread fault injection through.
func WriteSnapshotFileFS(fsys vfs.FS, path string, s *Snapshot) (string, error) {
	return snapbin.WriteFileFS(fsys, path, s.image())
}

// LoadSnapshot decodes a snapbin artifact from r into a serving
// snapshot. The whole artifact is read into memory once; pre-rendered
// bodies alias that buffer.
func LoadSnapshot(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("serve: reading snapshot artifact: %w", err)
	}
	img, hash, err := snapbin.Decode(data)
	if err != nil {
		return nil, err
	}
	return snapshotFromImage(img, hash)
}

// LoadSnapshotFile decodes the snapbin artifact at path into a
// serving snapshot.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	img, hash, err := snapbin.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return snapshotFromImage(img, hash)
}

// LoadSnapshotFileFS is LoadSnapshotFile against an explicit
// filesystem. Every load fully re-verifies the artifact's content
// hash, so a snapshot returned here is never served unverified.
func LoadSnapshotFileFS(fsys vfs.FS, path string) (*Snapshot, error) {
	img, hash, err := snapbin.ReadFileFS(fsys, path)
	if err != nil {
		return nil, err
	}
	return snapshotFromImage(img, hash)
}

// LoadSnapshotFileMapped decodes the snapbin artifact at path through
// a read-only memory mapping: the content hash is verified exactly as
// in LoadSnapshotFile, but the pre-rendered bodies alias the mapping
// and serve off the page cache, so the heap holds only the index-sized
// sections. The returned snapshot carries a refcounted backing — the
// server unmaps it only after the snapshot is swapped out and every
// in-flight request that pinned it has finished. Platforms or files
// that cannot map fall back to the buffered load behind the same
// signature.
func LoadSnapshotFileMapped(path string) (*Snapshot, error) {
	img, hash, release, err := snapbin.ReadFileMapped(path)
	if err != nil {
		return nil, err
	}
	s, err := snapshotFromImage(img, hash)
	if err != nil {
		if release != nil {
			release()
		}
		return nil, err
	}
	if release != nil {
		s.backing = newMmapBacking(release)
	}
	return s, nil
}

// LoadSnapshotFileMappedFS is LoadSnapshotFileMapped with a
// filesystem seam: mmap necessarily bypasses a vfs wrapper, so any
// filesystem other than the real one (fault-injection chaos, future
// overlays) takes the buffered LoadSnapshotFileFS path instead —
// fault coverage is preserved, and production gets the mapping.
func LoadSnapshotFileMappedFS(fsys vfs.FS, path string) (*Snapshot, error) {
	if fsys != nil && fsys != vfs.OS {
		return LoadSnapshotFileFS(fsys, path)
	}
	return LoadSnapshotFileMapped(path)
}

// PreparedSource produces a ready-made snapshot — one already built,
// loaded from a binary artifact, or patched from a predecessor —
// where Source produces a mapping for the server to index itself.
type PreparedSource func(ctx context.Context) (*Snapshot, error)

// SnapshotFileSource serves snapshots from a file of either format:
// if the file carries the snapbin magic it decodes the binary
// artifact (milliseconds), otherwise it falls back to the JSONL
// rebuild path (parse, union-find, tokenize, render). The sniff
// happens on every call, so an operator can swap a JSONL file for a
// binary artifact between reloads without restarting.
func SnapshotFileSource(path string) PreparedSource {
	return snapshotFileSource(path, LoadSnapshotFile)
}

// SnapshotFileSourceMapped is SnapshotFileSource with the binary load
// going through LoadSnapshotFileMapped — the -mmap serving mode, where
// a multi-GB artifact cold-starts without copying its body sections
// onto the heap. JSONL files still take the rebuild path.
func SnapshotFileSourceMapped(path string) PreparedSource {
	return snapshotFileSource(path, LoadSnapshotFileMapped)
}

func snapshotFileSource(path string, loadBinary func(string) (*Snapshot, error)) PreparedSource {
	return func(ctx context.Context) (*Snapshot, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if snapbin.SniffFile(path) {
			return loadBinary(path)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		m, err := cluster.ReadJSONL(f)
		if err != nil {
			return nil, fmt.Errorf("loading mapping from %s: %w", path, err)
		}
		return newSnapshotAt(m, path, Health{Status: HealthOK}, time.Now())
	}
}
