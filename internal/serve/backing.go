package serve

import "sync/atomic"

// mmapBacking refcounts the memory mapping a snapshot's pre-rendered
// bodies alias. The mapping is created with one reference — the
// "store" reference held on the snapshot's behalf while it is (or may
// become) the serving snapshot — and each in-flight request that reads
// body bytes holds one more via Pin/Unpin. munmap happens exactly when
// the count drains to zero: after the swap that retires the snapshot
// AND after the last request that pinned it finishes, never under a
// reader's feet. Delta-patched snapshots that share body bytes with
// their base acquire a reference on the base's backing, extending the
// mapping's lifetime across the chain.
//
// Heap-backed snapshots have a nil backing; their Pin/Unpin reduce to
// a nil check, preserving the zero-allocation lookup hot path.
type mmapBacking struct {
	refs  atomic.Int64
	unmap func()
}

// newMmapBacking wraps an unmap function with the creation reference
// already held.
func newMmapBacking(unmap func()) *mmapBacking {
	b := &mmapBacking{unmap: unmap}
	b.refs.Store(1)
	return b
}

// acquire takes a reference, failing if the count already drained to
// zero (the mapping is gone or about to be).
func (b *mmapBacking) acquire() bool {
	for {
		n := b.refs.Load()
		if n <= 0 {
			return false
		}
		if b.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release drops a reference and unmaps on the last one.
func (b *mmapBacking) release() {
	if b.refs.Add(-1) == 0 {
		b.unmap()
	}
}

// Pin takes a read reference on the snapshot's backing for the
// duration of a request that reads pre-rendered body bytes. It reports
// false only when the snapshot was retired and its mapping drained —
// the caller must re-load the current snapshot and retry. Heap-backed
// snapshots always pin successfully at the cost of a nil check.
func (s *Snapshot) Pin() bool {
	if s.backing == nil {
		return true
	}
	return s.backing.acquire()
}

// Unpin releases a successful Pin.
func (s *Snapshot) Unpin() {
	if s.backing != nil {
		s.backing.release()
	}
}

// retire releases the snapshot's creation reference, called exactly
// once when the snapshot stops being reachable as a serving snapshot
// (swapped out, or prepared and then rejected). The mapping unmaps
// once in-flight pins drain.
func (s *Snapshot) retire() {
	if s.backing != nil {
		s.backing.release()
	}
}

// MemoryMapped reports whether the snapshot's pre-rendered bodies are
// served from a memory-mapped artifact rather than the heap.
func (s *Snapshot) MemoryMapped() bool { return s.backing != nil }
