package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// poisonOrgBodies encodes snap as a snapbin artifact, corrupts the
// first byte of every pre-rendered org body, and re-signs the content
// hash — modeling an artifact altered after hashing (a buggy writer, a
// tampering proxy). Every structural check passes: magic, version,
// size, section table, the re-signed hash, and cluster.Restore's
// index↔membership verification. Only replaying live traffic against
// the candidate can catch it, which is exactly the canary's job.
func poisonOrgBodies(t testing.TB, snap *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	data := buf.Bytes()
	// Walk the section table: 7 entries of 20 bytes at offset 64
	// {id u32, offset u64, length u64}.
	type span struct{ off, length uint64 }
	sections := make(map[uint32]span, 7)
	for i := 0; i < 7; i++ {
		e := data[64+20*i:]
		id := binary.LittleEndian.Uint32(e)
		sections[id] = span{binary.LittleEndian.Uint64(e[4:]), binary.LittleEndian.Uint64(e[12:])}
	}
	// Org bodies (section 6) payload: count u32, count lengths u32,
	// then the blobs contiguously. Flip each blob's opening byte.
	bodies := sections[6]
	n := binary.LittleEndian.Uint32(data[bodies.off:])
	blob := bodies.off + 4 + 4*uint64(n)
	for i := uint32(0); i < n; i++ {
		l := binary.LittleEndian.Uint32(data[bodies.off+4+4*uint64(i):])
		if l > 0 {
			data[blob] ^= 0xff
		}
		blob += uint64(l)
	}
	// Re-sign: the content hash covers sections 2..7 in order.
	h := sha256.New()
	for _, id := range []uint32{2, 3, 4, 5, 6, 7} {
		s := sections[id]
		h.Write(data[s.off : s.off+s.length])
	}
	copy(data[24:56], h.Sum(nil))
	return data
}

// TestCanaryAcceptsValidSnapshot: every healthy snapshot this repo
// builds — full, binary round-trip, small and large — passes the
// default canary.
func TestCanaryAcceptsValidSnapshot(t *testing.T) {
	for _, m := range []*Snapshot{
		mustSnapshot(t, testMapping(t)),
		mustSnapshot(t, variantMapping(3, 512)),
	} {
		if err := canaryCheck(m, nil, CanaryConfig{}); err != nil {
			t.Fatalf("valid snapshot rejected: %v", err)
		}
	}
	// And a binary round-trip of one.
	var buf bytes.Buffer
	snap := mustSnapshot(t, variantMapping(1, 256))
	if _, err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := canaryCheck(loaded, snap, CanaryConfig{}); err != nil {
		t.Fatalf("binary round-trip rejected: %v", err)
	}
}

// TestCanaryRejectsPoisonedBodies: a hash-valid artifact with corrupt
// pre-rendered bodies decodes cleanly but dies at the canary with the
// typed error.
func TestCanaryRejectsPoisonedBodies(t *testing.T) {
	snap := mustSnapshot(t, variantMapping(2, 128))
	poisoned, err := LoadSnapshot(bytes.NewReader(poisonOrgBodies(t, snap)))
	if err != nil {
		t.Fatalf("poisoned artifact must decode (it is re-signed): %v", err)
	}
	err = canaryCheck(poisoned, snap, CanaryConfig{})
	if !errors.Is(err, ErrCanaryRejected) {
		t.Fatalf("canaryCheck = %v, want ErrCanaryRejected", err)
	}
}

// TestCanaryThetaTolerance: the opt-in θ gate rejects a drift past the
// tolerance and accepts one within it.
func TestCanaryThetaTolerance(t *testing.T) {
	prev := mustSnapshot(t, variantMapping(0, 256)) // runs of 2 ASNs
	next := mustSnapshot(t, variantMapping(4, 256)) // runs of 6 ASNs: very different θ
	err := canaryCheck(next, prev, CanaryConfig{ThetaTolerance: 1e-9})
	if !errors.Is(err, ErrCanaryRejected) {
		t.Fatalf("theta drift accepted: %v", err)
	}
	if err := canaryCheck(next, prev, CanaryConfig{ThetaTolerance: 10}); err != nil {
		t.Fatalf("theta within tolerance rejected: %v", err)
	}
	// Default config has no θ gate: the same swing passes.
	if err := canaryCheck(next, prev, CanaryConfig{}); err != nil {
		t.Fatalf("default config must not gate theta: %v", err)
	}
}

// TestCanaryDisable: Disable promotes anything, even the poisoned
// artifact.
func TestCanaryDisable(t *testing.T) {
	snap := mustSnapshot(t, variantMapping(2, 128))
	poisoned, err := LoadSnapshot(bytes.NewReader(poisonOrgBodies(t, snap)))
	if err != nil {
		t.Fatal(err)
	}
	if err := canaryCheck(poisoned, snap, CanaryConfig{Disable: true}); err != nil {
		t.Fatalf("disabled canary must accept: %v", err)
	}
}

// TestReloadCanaryGate: a poisoned candidate arriving through the full
// reload path is refused with 422, the serving snapshot is untouched,
// and the refusal is counted.
func TestReloadCanaryGate(t *testing.T) {
	good := mustSnapshot(t, variantMapping(1, 128))
	poisonedBytes := poisonOrgBodies(t, mustSnapshot(t, variantMapping(2, 128)))
	srv, err := NewServer(good, Options{
		Prepared: func(ctx context.Context) (*Snapshot, error) {
			return LoadSnapshot(bytes.NewReader(poisonedBytes))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/admin/reload", nil))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("reload status = %d, want 422 (body: %s)", rec.Code, rec.Body.String())
	}
	if srv.Snapshot() != good {
		t.Fatal("serving snapshot changed despite canary rejection")
	}
	if n := srv.Metrics().CanaryRejects(); n != 1 {
		t.Fatalf("CanaryRejects = %d, want 1", n)
	}
	if ok, failed := srv.Metrics().Reloads(); ok != 0 || failed != 1 {
		t.Fatalf("Reloads = (%d ok, %d failed), want (0, 1)", ok, failed)
	}
}
