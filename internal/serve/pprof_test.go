package serve

import (
	"net/http"
	"strings"
	"testing"
)

func TestPprofHandlersGated(t *testing.T) {
	off := newTestServer(t, Options{})
	if rec := do(t, off, "GET", "/debug/pprof/", nil); rec.Code != http.StatusNotFound {
		t.Errorf("without EnablePprof: /debug/pprof/ = %d, want 404", rec.Code)
	}

	on := newTestServer(t, Options{EnablePprof: true})
	rec := do(t, on, "GET", "/debug/pprof/", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("with EnablePprof: /debug/pprof/ = %d, want 200", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index does not list profiles: %q", body[:min(len(body), 120)])
	}
	// A named profile resolves through the index handler's path routing.
	if rec := do(t, on, "GET", "/debug/pprof/goroutine?debug=1", nil); rec.Code != http.StatusOK {
		t.Errorf("goroutine profile = %d, want 200", rec.Code)
	}
	// The service API is unaffected by the extra mounts.
	if rec := do(t, on, "GET", "/v1/as/3356", nil); rec.Code != http.StatusOK {
		t.Errorf("/v1/as with pprof enabled = %d, want 200", rec.Code)
	}
}
