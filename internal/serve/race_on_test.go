//go:build race

package serve

// raceEnabled lets allocation-count tests skip under -race: the race
// runtime deliberately drops sync.Pool items to widen interleavings,
// which inflates per-op allocation counts.
const raceEnabled = true
