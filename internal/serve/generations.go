package serve

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nu-aqualab/borges/internal/snapbin"
	"github.com/nu-aqualab/borges/internal/vfs"
)

// ErrNoVerifiedGeneration: a rollback was requested but no on-disk
// generation other than the serving one decodes and verifies.
var ErrNoVerifiedGeneration = errors.New("serve: no verified previous generation")

// Generation describes one verified artifact in the ring.
type Generation struct {
	// Seq is the monotonic promotion ordinal (survives restarts: the
	// scan resumes after the highest seq on disk).
	Seq uint64 `json:"seq"`
	// Hash is the artifact's verified snapbin content hash.
	Hash string `json:"hash"`
	// Size is the artifact's byte size.
	Size int64 `json:"size"`
	// SavedAt is when the generation was promoted (file mtime for
	// generations recovered by the startup scan).
	SavedAt time.Time `json:"saved_at"`
	// File is the artifact's base name inside the ring directory.
	File string `json:"file"`
}

// GenerationRing keeps the last N verified snapbin artifacts on disk
// so every swap is reversible. Files are named
// gen-<seq>-<hash prefix>.snapbin, written with the same atomic
// temp+fsync+rename discipline as every other artifact, and pruned
// oldest-first past the keep limit. Nothing in the ring is ever served
// without a full decode re-verifying its content hash; a file that
// fails verification is quarantined — renamed to <name>.corrupt,
// counted, and never revisited.
type GenerationRing struct {
	dir  string
	keep int
	fs   vfs.FS
	logf func(format string, args ...any)

	mu   sync.Mutex
	gens []Generation // ascending by Seq
	seq  uint64       // highest seq ever used

	quarantined atomic.Int64
}

// NewGenerationRing opens (creating if needed) a ring directory and
// scans it: every gen-*.snapbin file is decoded and hash-verified;
// corrupt or unparsable files are quarantined immediately, so a
// freshly opened ring only ever lists verified artifacts. fsys nil
// means the real filesystem; logf nil disables logging.
func NewGenerationRing(dir string, keep int, fsys vfs.FS, logf func(format string, args ...any)) (*GenerationRing, error) {
	if keep < 1 {
		return nil, fmt.Errorf("serve: generation ring needs keep >= 1, got %d", keep)
	}
	r := &GenerationRing{dir: dir, keep: keep, fs: vfs.Or(fsys), logf: logf}
	if err := r.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: generation ring: %w", err)
	}
	entries, err := r.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: generation ring: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, "gen-") || !strings.HasSuffix(name, ".snapbin") {
			continue
		}
		seq, ok := parseGenSeq(name)
		if !ok {
			r.quarantineLocked(Generation{File: name}, "unparsable name")
			continue
		}
		path := filepath.Join(dir, name)
		img, hash, err := snapbin.ReadFileFS(r.fs, path)
		if err != nil {
			r.quarantineLocked(Generation{Seq: seq, File: name}, err.Error())
			continue
		}
		g := Generation{Seq: seq, Hash: hash, File: name, SavedAt: img.LoadedAt}
		if st, err := r.fs.Stat(path); err == nil {
			g.Size = st.Size()
			g.SavedAt = st.ModTime()
		}
		r.gens = append(r.gens, g)
		if seq > r.seq {
			r.seq = seq
		}
	}
	sort.Slice(r.gens, func(i, j int) bool { return r.gens[i].Seq < r.gens[j].Seq })
	r.pruneLocked()
	return r, nil
}

// parseGenSeq extracts the sequence ordinal from gen-<seq>-<hash>.snapbin.
func parseGenSeq(name string) (uint64, bool) {
	rest := strings.TrimPrefix(name, "gen-")
	dash := strings.IndexByte(rest, '-')
	if dash <= 0 {
		return 0, false
	}
	seq, err := strconv.ParseUint(rest[:dash], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Dir returns the ring directory.
func (r *GenerationRing) Dir() string { return r.dir }

// Keep returns the configured retention limit.
func (r *GenerationRing) Keep() int { return r.keep }

// Len returns how many verified generations the ring currently holds.
func (r *GenerationRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.gens)
}

// QuarantinedTotal counts files the ring has quarantined over its
// lifetime (startup scan, rollback verification, and scrub passes).
func (r *GenerationRing) QuarantinedTotal() int64 { return r.quarantined.Load() }

// Generations returns the ring's lineage, oldest first.
func (r *GenerationRing) Generations() []Generation {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Generation, len(r.gens))
	copy(out, r.gens)
	return out
}

// Record persists snap as the newest generation. Recording the hash
// already at the head is a no-op (a delta reload that produced
// identical content, or a rollback target being re-promoted). The
// write is atomic; on error nothing is recorded and the caller decides
// whether that is fatal (for a serving swap it never is — the swap
// already happened, persistence is best-effort durability).
func (r *GenerationRing) Record(snap *Snapshot, now time.Time) (Generation, error) {
	hash := snap.ContentHash()
	r.mu.Lock()
	if n := len(r.gens); n > 0 && r.gens[n-1].Hash == hash {
		g := r.gens[n-1]
		r.mu.Unlock()
		return g, nil
	}
	r.seq++
	seq := r.seq
	r.mu.Unlock()

	name := fmt.Sprintf("gen-%06d-%.12s.snapbin", seq, hash)
	path := filepath.Join(r.dir, name)
	if _, err := WriteSnapshotFileFS(r.fs, path, snap); err != nil {
		return Generation{}, fmt.Errorf("serve: generation ring: %w", err)
	}
	g := Generation{Seq: seq, Hash: hash, File: name, SavedAt: now}
	if st, err := r.fs.Stat(path); err == nil {
		g.Size = st.Size()
	}
	r.mu.Lock()
	r.gens = append(r.gens, g)
	r.pruneLocked()
	r.mu.Unlock()
	r.log(`{"event":"generation_recorded","seq":%d,"hash":%q,"file":%q}`, seq, hash, name)
	return g, nil
}

// pruneLocked drops generations past the keep limit, oldest first.
// Callers hold r.mu.
func (r *GenerationRing) pruneLocked() {
	for len(r.gens) > r.keep {
		old := r.gens[0]
		r.gens = r.gens[1:]
		if err := r.fs.Remove(filepath.Join(r.dir, old.File)); err != nil {
			r.log(`{"event":"generation_prune","seq":%d,"ok":false,"error":%q}`, old.Seq, err.Error())
		} else {
			r.log(`{"event":"generation_prune","seq":%d,"hash":%q}`, old.Seq, old.Hash)
		}
	}
}

// PreviousVerified decodes and returns the newest generation whose
// hash differs from exclude (the serving snapshot's hash) — the
// rollback target. Every candidate is re-verified on the spot; a
// generation that no longer decodes is quarantined and the walk
// continues to the next-oldest. ErrNoVerifiedGeneration when the ring
// is exhausted.
func (r *GenerationRing) PreviousVerified(exclude string) (*Snapshot, Generation, error) {
	for {
		r.mu.Lock()
		var pick Generation
		found := false
		for i := len(r.gens) - 1; i >= 0; i-- {
			if r.gens[i].Hash != exclude {
				pick = r.gens[i]
				found = true
				break
			}
		}
		r.mu.Unlock()
		if !found {
			return nil, Generation{}, ErrNoVerifiedGeneration
		}
		// Mapped load: a rollback artifact can be multi-GB, and the
		// mapping stays valid even if a later prune or quarantine
		// unlinks the file (the inode lives until munmap).
		snap, err := LoadSnapshotFileMappedFS(r.fs, filepath.Join(r.dir, pick.File))
		if err != nil {
			r.quarantine(pick, err.Error())
			continue
		}
		return snap, pick, nil
	}
}

// Scrub re-reads and re-verifies every generation, quarantining any
// that fail. It returns how many were checked and how many
// quarantined. A file already quarantined is gone from the ring, so
// repeated scrubs count each corrupt artifact exactly once.
func (r *GenerationRing) Scrub() (checked, quarantined int) {
	r.mu.Lock()
	gens := make([]Generation, len(r.gens))
	copy(gens, r.gens)
	r.mu.Unlock()
	for _, g := range gens {
		checked++
		_, hash, err := snapbin.ReadFileFS(r.fs, filepath.Join(r.dir, g.File))
		if err == nil && hash != g.Hash {
			err = fmt.Errorf("content hash changed on disk: %s != %s", hash, g.Hash)
		}
		if err != nil {
			r.quarantine(g, err.Error())
			quarantined++
		}
	}
	return checked, quarantined
}

// quarantine removes g from the ring and renames its file to
// <name>.corrupt, preserving the evidence while guaranteeing no load
// path can ever pick it up again (nothing scans *.corrupt).
func (r *GenerationRing) quarantine(g Generation, reason string) {
	r.mu.Lock()
	for i := range r.gens {
		if r.gens[i].File == g.File {
			r.gens = append(r.gens[:i], r.gens[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
	r.quarantineLocked(g, reason)
}

// quarantineLocked renames and counts without touching r.gens (the
// startup scan uses it before the entry ever joins the ring).
func (r *GenerationRing) quarantineLocked(g Generation, reason string) {
	path := filepath.Join(r.dir, g.File)
	if err := r.fs.Rename(path, path+".corrupt"); err != nil {
		r.log(`{"event":"generation_quarantine","file":%q,"ok":false,"error":%q}`, g.File, err.Error())
		return
	}
	r.quarantined.Add(1)
	r.log(`{"event":"generation_quarantine","file":%q,"reason":%q}`, g.File, reason)
}

func (r *GenerationRing) log(format string, args ...any) {
	if r.logf != nil {
		r.logf(format, args...)
	}
}
