package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/mapdiff"
	"github.com/nu-aqualab/borges/internal/orgfactor"
)

// ErrDeltaMismatch marks a delta whose removals do not describe the
// serving snapshot — it was computed against a different base. The
// reload path surfaces this distinctly so an operator retries with a
// full snapshot instead of a corrected delta.
var ErrDeltaMismatch = errors.New("serve: delta does not apply to the serving snapshot")

// ApplyDelta produces a new snapshot by patching only what the delta
// touches, leaving every untouched cluster's indexes and pre-rendered
// bytes shared with the base snapshot. The result is deep-equal to a
// from-scratch build of the patched mapping:
//
//   - Canonical cluster order (descending size, ties by smallest
//     member) is a pure function of membership, so re-sorting
//     survivors+additions reproduces the exact IDs a full build
//     assigns. Survivors keep their relative order, so remapping a
//     sorted posting list keeps it sorted.
//   - Added (and ID-shifted surviving) clusters render through the
//     same renderBodies used by the full build, byte for byte.
//   - θ and the histogram recompute from the patched descending size
//     slice with the same arithmetic the full build runs.
//
// The base snapshot is never mutated; on any validation failure the
// base keeps serving.
func (s *Snapshot) ApplyDelta(d *mapdiff.Delta) (*Snapshot, error) {
	return s.applyDeltaAt(d, time.Now())
}

// applyDeltaAt is ApplyDelta with an injectable clock for tests.
func (s *Snapshot) applyDeltaAt(d *mapdiff.Delta, now time.Time) (*Snapshot, error) {
	nOld := len(s.mapping.Clusters)

	// Verify every removal names a base cluster by its exact member
	// list. Carrying full membership in the delta makes "wrong base"
	// detectable here instead of surfacing as silent drift.
	deleted := make([]bool, nOld)
	delASNs := 0
	for _, members := range d.Removed {
		if len(members) == 0 {
			return nil, fmt.Errorf("%w: removal with no members", ErrDeltaMismatch)
		}
		c := s.mapping.ClusterOf(members[0])
		if c == nil || !slices.Equal(c.ASNs, members) {
			return nil, fmt.Errorf("%w: no organization with members %v", ErrDeltaMismatch, members)
		}
		if deleted[c.ID] {
			return nil, fmt.Errorf("%w: organization %d removed twice", ErrDeltaMismatch, c.ID)
		}
		deleted[c.ID] = true
		delASNs += len(members)
	}

	// Verify additions: sorted members, no overlap with each other or
	// with any surviving cluster.
	addASNs := 0
	claimed := make(map[asnum.ASN]bool)
	for i := range d.Added {
		c := &d.Added[i]
		if len(c.ASNs) == 0 {
			return nil, fmt.Errorf("%w: addition with no members", ErrDeltaMismatch)
		}
		for j, a := range c.ASNs {
			if j > 0 && c.ASNs[j-1] >= a {
				return nil, fmt.Errorf("%w: added organization members not strictly ascending", ErrDeltaMismatch)
			}
			if owner := s.mapping.ClusterOf(a); owner != nil && !deleted[owner.ID] {
				return nil, fmt.Errorf("%w: added organization claims %s, still held by organization %d",
					ErrDeltaMismatch, a, owner.ID)
			}
			if claimed[a] {
				return nil, fmt.Errorf("%w: %s added twice", ErrDeltaMismatch, a)
			}
			claimed[a] = true
		}
		addASNs += len(c.ASNs)
	}

	// Re-derive canonical order over survivors + additions. Survivors
	// arrive already canonically sorted relative to each other, so the
	// sort only has to place the (few) additions.
	type entry struct {
		members []asnum.ASN
		oldID   int // base cluster ID, or -1 for an addition
		addIdx  int // index into d.Added, or -1 for a survivor
	}
	entries := make([]entry, 0, nOld-len(d.Removed)+len(d.Added))
	for i := range s.mapping.Clusters {
		if !deleted[i] {
			entries = append(entries, entry{members: s.mapping.Clusters[i].ASNs, oldID: i, addIdx: -1})
		}
	}
	for i := range d.Added {
		entries = append(entries, entry{members: d.Added[i].ASNs, oldID: -1, addIdx: i})
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("serve: refusing to serve an empty mapping (delta removed every organization)")
	}
	sort.SliceStable(entries, func(a, b int) bool {
		return cluster.CompareCanonical(entries[a].members, entries[b].members) < 0
	})

	// Assemble the patched cluster slice and per-cluster serving
	// artifacts. A survivor whose ID is unchanged shares its rendered
	// bytes with the base; a shifted survivor gets its ID digits
	// respliced without re-encoding JSON; an addition renders from
	// scratch through the same code as a full build.
	n := len(entries)
	clusters := make([]cluster.Cluster, n)
	lowerNames := make([]string, n)
	orgBodies := make([][]byte, n)
	asTails := make([][]byte, n)
	remap := make([]int32, nOld) // base ID → patched ID, -1 if deleted
	for i := range remap {
		remap[i] = -1
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	for i, e := range entries {
		if e.oldID >= 0 {
			oc := &s.mapping.Clusters[e.oldID]
			clusters[i] = *oc
			clusters[i].ID = i
			lowerNames[i] = s.lowerNames[e.oldID]
			remap[e.oldID] = int32(i)
			if i == e.oldID {
				orgBodies[i] = s.orgBodies[e.oldID]
				asTails[i] = s.asTails[e.oldID]
			} else {
				body := respliceOrgID(s.orgBodies[e.oldID], i)
				orgBodies[i] = body
				asTails[i] = renderTail(body, oc.ASNs)
			}
			continue
		}
		clusters[i] = d.Added[e.addIdx]
		clusters[i].ID = i
		lowerNames[i] = strings.ToLower(clusters[i].Name)
		body, tail, err := renderBodies(&clusters[i], &buf, enc)
		if err != nil {
			return nil, fmt.Errorf("serve: rendering added organization: %w", err)
		}
		orgBodies[i] = body
		asTails[i] = tail
	}

	// Splice the packed ASN→cluster index: one merge pass over the old
	// keys (dropping deletions, remapping survivors) interleaved with
	// the additions' sorted (ASN, ID) pairs.
	oldKeys, oldVals := s.mapping.RawIndex()
	addPairs := make([]uint64, 0, addASNs)
	for i := range entries {
		if entries[i].addIdx >= 0 {
			for _, a := range clusters[i].ASNs {
				addPairs = append(addPairs, uint64(a)<<32|uint64(uint32(i)))
			}
		}
	}
	slices.Sort(addPairs)
	keys := make([]asnum.ASN, 0, len(oldKeys)-delASNs+addASNs)
	vals := make([]int32, 0, len(oldKeys)-delASNs+addASNs)
	ai := 0
	for i, a := range oldKeys {
		v := remap[oldVals[i]]
		if v < 0 {
			continue
		}
		for ai < len(addPairs) && asnum.ASN(addPairs[ai]>>32) < a {
			keys = append(keys, asnum.ASN(addPairs[ai]>>32))
			vals = append(vals, int32(uint32(addPairs[ai])))
			ai++
		}
		keys = append(keys, a)
		vals = append(vals, v)
	}
	for ; ai < len(addPairs); ai++ {
		keys = append(keys, asnum.ASN(addPairs[ai]>>32))
		vals = append(vals, int32(uint32(addPairs[ai])))
	}

	// Restore re-verifies everything — canonical order, strict key
	// ascent, index↔membership correspondence — so a buggy or
	// adversarial delta fails here rather than serving wrong answers.
	m, err := cluster.Restore(clusters, keys, vals)
	if err != nil {
		return nil, fmt.Errorf("serve: patched mapping fails validation: %w", err)
	}

	// Patch the token index: one filter-and-remap pass over every
	// posting list (deletions drop out, survivors renumber, order is
	// preserved because survivor remapping is monotonic), then sorted
	// insertion of the additions' tokens.
	tokens := make(map[string][]int, len(s.tokens))
	for tok, ids := range s.tokens {
		nids := make([]int, 0, len(ids))
		for _, id := range ids {
			if v := remap[id]; v >= 0 {
				nids = append(nids, int(v))
			}
		}
		if len(nids) > 0 {
			tokens[tok] = nids
		}
	}
	for i := range entries {
		if entries[i].addIdx < 0 {
			continue
		}
		for _, tok := range tokenize(lowerNames[i]) {
			ids := tokens[tok]
			pos := sort.SearchInts(ids, i)
			if pos < len(ids) && ids[pos] == i {
				continue
			}
			ids = append(ids, 0)
			copy(ids[pos+1:], ids[pos:])
			ids[pos] = i
			tokens[tok] = ids
		}
	}
	tokenList := make([]string, 0, len(tokens))
	for tok := range tokens {
		tokenList = append(tokenList, tok)
	}
	sort.Strings(tokenList)

	// Recompute corpus statistics from the patched descending size
	// slice — the same inputs and arithmetic as a full build, so θ is
	// bit-identical.
	sizes := m.Sizes()
	theta, err := orgfactor.ThetaFromSizes(sizes, m.NumASNs())
	if err != nil {
		return nil, fmt.Errorf("serve: patched mapping fails θ validation: %w", err)
	}

	ns := &Snapshot{
		mapping:    m,
		tokens:     tokens,
		tokenList:  tokenList,
		lowerNames: lowerNames,
		orgBodies:  orgBodies,
		asTails:    asTails,
		source:     s.source,
		loadedAt:   now,
		health:     s.health,
		loadMode:   LoadModeDelta,
	}
	// Unchanged survivors share body bytes with the base snapshot; if
	// those bytes live in a memory mapping, the patched snapshot takes
	// its own reference so the mapping outlives the base's retirement.
	// The acquire cannot fail here: the caller holds the base as a live
	// serving (or caller-owned) snapshot, so its creation reference is
	// still up.
	if s.backing != nil && s.backing.acquire() {
		ns.backing = s.backing
	}
	ns.scratchPool.New = func() any {
		return &searchScratch{bits: make([]uint64, (n+63)/64)}
	}
	ns.stats = Stats{
		Orgs:          m.NumOrgs(),
		ASNs:          m.NumASNs(),
		Theta:         theta,
		MultiASOrgs:   multiCount(sizes),
		LargestOrg:    sizes[0],
		SizeHistogram: sizeHistogram(sizes),
	}
	return ns, nil
}

// respliceOrgID rewrites the leading `{"org":<digits>` of a
// pre-rendered body for a cluster whose canonical ID shifted, without
// re-encoding the JSON. The body layout is fixed by orgJSON's field
// order, so the ID digits always sit immediately after the prefix.
func respliceOrgID(body []byte, newID int) []byte {
	const prefix = `{"org":`
	i := len(prefix)
	j := i
	for j < len(body) && body[j] >= '0' && body[j] <= '9' {
		j++
	}
	out := make([]byte, 0, len(body)+10)
	out = append(out, body[:i]...)
	out = strconv.AppendInt(out, int64(newID), 10)
	return append(out, body[j:]...)
}

// renderTail rebuilds a /v1/as tail from its (already-respliced) org
// body — the same bytes renderBodies produces for a full build.
func renderTail(body []byte, asns []asnum.ASN) []byte {
	tail := make([]byte, 0, len(asTailOrg)+len(body)-1+len(asTailSiblings)+12*len(asns)+2)
	tail = append(tail, asTailOrg...)
	tail = append(tail, body[:len(body)-1]...) // org JSON sans newline
	tail = append(tail, asTailSiblings...)
	tail = appendASNList(tail, asns)
	return append(tail, '}', '\n')
}
