package simllm

import (
	"context"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/ner"
)

func extractWith(t *testing.T, m *Model, notes, aka string) []string {
	t.Helper()
	resp, err := m.Complete(context.Background(), llm.Request{
		Messages: []llm.Message{{
			Role:    llm.RoleUser,
			Content: ner.BuildPrompt(ner.Record{ASN: 1, Notes: notes, Aka: aka}),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	siblings, _, err := ner.ParseResponse(resp.Content)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(siblings))
	for i, s := range siblings {
		out[i] = s.String()
	}
	return out
}

func TestProfileMultilingualExtraction(t *testing.T) {
	full := NewModel()
	mono := NewModelWithProfile(ProfileLlama)

	// An explicit AS-prefixed sibling claim extracts under both
	// profiles — the AS prefix itself is language-neutral evidence.
	spanish := "Esta red pertenece a la misma organización que AS64510."
	if got := extractWith(t, full, spanish, ""); len(got) != 1 || got[0] != "AS64510" {
		t.Errorf("multilingual model: %v", got)
	}
	if got := extractWith(t, mono, spanish, ""); len(got) != 1 {
		t.Errorf("monolingual model on AS-prefixed Spanish: %v", got)
	}
	// The profiles diverge on *negative* context: a Spanish inline
	// connectivity statement is understood only multilingually.
	upstream := "Conectados a AS174 para tránsito internacional."
	if got := extractWith(t, full, upstream, ""); len(got) != 0 {
		t.Errorf("multilingual model should reject the Spanish transit mention: %v", got)
	}
	if got := extractWith(t, mono, upstream, ""); len(got) != 1 {
		t.Errorf("monolingual model should misread the Spanish transit mention: %v", got)
	}
	// English negative context works for both.
	english := "Connected to AS174 for international transit."
	if got := extractWith(t, mono, english, ""); len(got) != 0 {
		t.Errorf("monolingual model on English transit: %v", got)
	}
}

func TestProfileMonolingualOverExtraction(t *testing.T) {
	// A Portuguese connectivity listing: the multilingual model rejects
	// the decoys; the monolingual one misreads them as sibling claims —
	// the over-extraction failure mode ModelComparison reports.
	notes := "Nossos provedores de trânsito:\n- Algar (AS16735)\n- Cogent (AS174)"
	full := NewModel()
	mono := NewModelWithProfile(ProfileLlama)
	if got := extractWith(t, full, notes, ""); len(got) != 0 {
		t.Errorf("multilingual model should reject upstream decoys: %v", got)
	}
	if got := extractWith(t, mono, notes, ""); len(got) == 0 {
		t.Error("monolingual model should over-extract from the unrecognised listing")
	}
}

func classifyWith(t *testing.T, m *Model, urls []string, iconID string) string {
	t.Helper()
	resp, err := m.Complete(context.Background(), llm.Request{
		Messages: []llm.Message{classifierMsg(urls, iconID)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Content
}

func TestProfileVisualKnowledge(t *testing.T) {
	claroURLs := []string{"https://www.clarochile.cl/", "https://www.claropr.com/"}
	bootstrapURLs := []string{"https://www.anosbd.com/", "https://www.rptechzone.in/"}

	full := NewModel()
	llama := NewModelWithProfile(ProfileLlama)
	small := NewModelWithProfile(ProfileSmall)

	// Brand logo: only the flagship recognises it by sight; the others
	// fall back to the domain stem (which still succeeds for Claro).
	if got := classifyWith(t, full, claroURLs, "brand:claro"); got != "Claro" {
		t.Errorf("full profile: %q", got)
	}
	if got := classifyWith(t, llama, claroURLs, "brand:claro"); !strings.HasPrefix(strings.ToLower(got), "claro") {
		t.Errorf("llama should recover Claro via the stem: %q", got)
	}

	// Framework icon over unrelated names: recognised by full and
	// llama, unknown to small.
	if got := classifyWith(t, full, bootstrapURLs, FrameworkIconID("bootstrap")); got != "Bootstrap" {
		t.Errorf("full profile framework: %q", got)
	}
	if got := classifyWith(t, llama, bootstrapURLs, FrameworkIconID("bootstrap")); got != "Bootstrap" {
		t.Errorf("llama profile framework: %q", got)
	}
	if got := classifyWith(t, small, bootstrapURLs, FrameworkIconID("bootstrap")); !IsDontKnow(got) {
		t.Errorf("small profile should not recognise the icon: %q", got)
	}
}

func TestProfileNames(t *testing.T) {
	m := NewModelWithProfile(ProfileLlama)
	resp, err := m.Complete(context.Background(), llm.Request{
		Messages: []llm.Message{classifierMsg([]string{"https://a.test/"}, "site:x")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != "sim-llama-8b" {
		t.Errorf("model name = %q", resp.Model)
	}
	anon := NewModelWithProfile(Profile{})
	if anon.Name != "sim-custom" {
		t.Errorf("unnamed profile = %q", anon.Name)
	}

}
