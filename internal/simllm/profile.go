package simllm

// Profile parameterises a simulated model's capabilities, enabling the
// exploration the paper's conclusion calls for ("Borges opens a path
// for exploration with … alternative models such as Meta's Llama and
// DeepSeek's R1"): weaker models lose multilingual cue coverage and
// visual brand knowledge, degrading extraction recall and classifier
// recall in the ways smaller real models do.
type Profile struct {
	// Name is reported in responses.
	Name string
	// Multilingual extends the affiliation/connectivity cue lexicons
	// beyond English.
	Multilingual bool
	// KnowsBrands enables recognition of telecom brand logos.
	KnowsBrands bool
	// KnowsFrameworks enables recognition of web-technology default
	// icons.
	KnowsFrameworks bool
}

// Built-in profiles.
var (
	// ProfileGPT4oMini is the paper's configuration: full multilingual
	// cue coverage and visual knowledge of brands and frameworks.
	ProfileGPT4oMini = Profile{
		Name: "sim-gpt-4o-mini", Multilingual: true,
		KnowsBrands: true, KnowsFrameworks: true,
	}
	// ProfileLlama models a mid-size open-weights model: solid English
	// extraction and framework icons, but no reliable multilingual cue
	// coverage and weak logo recognition.
	ProfileLlama = Profile{
		Name: "sim-llama-8b", Multilingual: false,
		KnowsBrands: false, KnowsFrameworks: true,
	}
	// ProfileSmall models a small distilled model: English-only and no
	// visual knowledge at all — it can only reason over domain names.
	ProfileSmall = Profile{
		Name: "sim-small-3b", Multilingual: false,
		KnowsBrands: false, KnowsFrameworks: false,
	}
)

// NewModelWithProfile returns a simulated model with the given
// capability profile. NewModel is equivalent to
// NewModelWithProfile(ProfileGPT4oMini).
func NewModelWithProfile(p Profile) *Model {
	m := &Model{Name: p.Name, profile: p, knowledge: newIconKnowledge()}
	if m.Name == "" {
		m.Name = "sim-custom"
	}
	return m
}
