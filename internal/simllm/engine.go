// Package simllm provides a deterministic simulated large language model
// implementing the llm.Provider interface. It stands in for the
// GPT-4o-mini backend of the paper (§4.2, §4.3.3) in offline runs: it
// recognises the two prompts Borges issues — the Listing 2 sibling
// information-extraction prompt and the Listing 3 favicon/company
// classification prompt — runs a multilingual semantic context engine
// over the embedded text, and answers in the formats the prompts request.
//
// Like the paper's temperature-0 configuration, the model is fully
// deterministic: identical requests produce identical responses. Its
// imperfections are not random noise but the same *structural* failure
// modes the paper reports for GPT-4o-mini: sibling mentions buried in
// contexts that read as upstream listings are missed, and plausible
// ASN-shaped numbers in affiliation-flavoured prose are over-extracted.
package simllm

import (
	"regexp"
	"strings"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// Verdict classifies one number mention found in text.
type Verdict uint8

// Mention verdicts.
const (
	// VerdictSibling marks a number judged to be a sibling ASN.
	VerdictSibling Verdict = iota
	// VerdictUpstream marks an ASN judged to be an upstream, peer, or
	// other connectivity mention.
	VerdictUpstream
	// VerdictNoise marks a non-ASN number (phone, year, address,
	// prefix limit, …).
	VerdictNoise
)

// Mention is one analysed number occurrence.
type Mention struct {
	ASN     asnum.ASN
	Verdict Verdict
	Reason  string
}

// cue lexicons. All matching is case-insensitive on lowercased text.
// The engine is multilingual in the same pragmatic sense the paper
// needs: the cues cover the English, Spanish, Portuguese, German,
// French, and Italian phrasings that dominate PeeringDB free text.
var (
	// siblingCuesEN / siblingCuesIntl phrase affiliation claims; the
	// international section covers the Spanish, Portuguese, German,
	// French, and Italian phrasings that dominate PeeringDB free text.
	// Which sections a model understands depends on its Profile.
	siblingCuesEN = []string{
		"sibling", "same organization", "same organisation", "same company",
		"part of", "belongs to", "belong to", "owned by", "owns",
		"also operate", "also runs", "also known", "our other network",
		"merged", "merger", "acquired", "acquisition", "formerly",
		"subsidiar", // subsidiary / subsidiaria / subsidiárias
		"sister", "parent company", "rebrand", "umbrella", "holding",
		"division of", "unit of", "group of", "member of",
		"family of networks", "our group", "group networks",
	}
	siblingCuesIntl = []string{
		// Spanish
		"misma organización", "misma organizacion", "mismo grupo",
		"también opera", "tambien opera", "filial", "pertenece a",
		// Portuguese
		"mesmo grupo", "mesma organização", "também opera", "tambem opera",
		"pertence a",
		// German
		"tochter", "gehört zu", "gehoert zu", "teil der", "teil von",
		"gleichen unternehmen", "konzern", "schwester",
		// French
		"filiale", "appartient à", "appartient a", "même groupe",
		"meme groupe", "fait partie",
		// Italian
		"stessa organizzazione", "stesso gruppo", "appartiene a",
		// Pan-romance brand-family phrasing
		"grupo",
	}

	// upstreamCues flag connectivity talk: the prompt explicitly
	// instructs the model to ignore upstream providers, peers, and BGP
	// community listings.
	upstreamCuesEN = []string{
		"upstream", "transit", "we connect", "connected to", "connect directly",
		"our providers", "provider of", "providers:", "carriers",
		"peering with", "peers with", "peer with", "peers:", "peering:",
		"ix ", "ixp", "internet exchange", "exchange point",
		"as-in", "as-out", "communities", "community", "route server",
		"route-server", "looking glass", "downstream", "customers",
		"full table", "default route", "blend", "uplink",
	}
	upstreamCuesIntl = []string{
		// Spanish / Portuguese connectivity talk
		"proveedores", "provedores", "conectado a", "conectados a",
		"transito", "tránsito", "trânsito",
	}

	// noiseCues flag numeric context that is never an ASN.
	noiseCuesEN = []string{
		"phone", "tel", "fax", "call us", "whatsapp",
		"suite", "floor", "street", " ave", "avenue",
		"po box", "p.o. box", "zip", "postal",
		"prefix", "prefixes", "max-prefix", "routes accepted",
		"since", "founded", "established", "copyright", "©", "est.",
		"mtu", "vlan", "port", "gbps", "mbps", "rfc",
	}
	noiseCuesIntl = []string{
		"teléfono", "telefono", "telefone", "avenida", "cp ", "c.p.",
	}
)

// lexicon bundles the cue lists one model variant understands.
type lexicon struct {
	sibling, upstream, noise []string
}

// fullLexicon covers every supported language (the GPT-4o-mini
// profile); englishLexicon is the monolingual subset.
var (
	fullLexicon = lexicon{
		sibling:  append(append([]string{}, siblingCuesEN...), siblingCuesIntl...),
		upstream: append(append([]string{}, upstreamCuesEN...), upstreamCuesIntl...),
		noise:    append(append([]string{}, noiseCuesEN...), noiseCuesIntl...),
	}
	englishLexicon = lexicon{
		sibling:  siblingCuesEN,
		upstream: upstreamCuesEN,
		noise:    noiseCuesEN,
	}
)

func containsAny(lower string, cues []string) (string, bool) {
	for _, c := range cues {
		if strings.Contains(lower, c) {
			return c, true
		}
	}
	return "", false
}

// mentionRe finds AS-prefixed or bare number sequences. The AS-prefixed
// alternative is listed first so "AS3356" is captured with its prefix.
var mentionRe = regexp.MustCompile(`(?i)\bAS[-\s]?([0-9]{1,10})\b|\b([0-9]{1,10})\b`)

// listItemRe recognises list-item lines: "- Algar (AS16735)", "* x",
// "1. x", "• x".
var listItemRe = regexp.MustCompile(`^\s*(?:[-*•]|\d+[.)])\s+`)

// sectionHeaderish reports whether a line reads like it introduces a
// list ("We connect directly with the following ISPs,").
func sectionHeaderish(line string) bool {
	t := strings.TrimSpace(line)
	return strings.HasSuffix(t, ":") || strings.HasSuffix(t, ",") ||
		strings.Contains(strings.ToLower(t), "following")
}

// yearRe bounds plausible year values.
func looksLikeYear(n uint32) bool { return n >= 1900 && n <= 2035 }

// ExtractField analyses one free-text field with the full multilingual
// lexicon and returns every number mention with a verdict. field is
// "notes" or "aka": numbers in aka default to sibling identities (the
// field lists what the network is also known as), while bare numbers in
// notes need an affiliation cue.
func ExtractField(field, text string) []Mention {
	return extractField(fullLexicon, field, text)
}

func extractField(lex lexicon, field, text string) []Mention {
	var out []Mention
	lines := strings.Split(text, "\n")
	inUpstreamSection := false
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		lower := strings.ToLower(line)
		if trimmed == "" {
			inUpstreamSection = false
			continue
		}
		lineUpCue, lineUp := containsAny(lower, lex.upstream)
		lineSibCue, lineSib := containsAny(lower, lex.sibling)
		lineNoiseCue, lineNoise := containsAny(lower, lex.noise)
		if lineUp && sectionHeaderish(line) {
			inUpstreamSection = true
		}
		// A plain prose line ends a connectivity listing; list items,
		// parentheticals, and further header-ish lines continue it.
		isListItem := listItemRe.MatchString(line)
		if !isListItem && !lineUp && !sectionHeaderish(line) && !lineSib &&
			!strings.HasPrefix(trimmed, "(") {
			inUpstreamSection = false
		}

		for _, m := range mentionRe.FindAllStringSubmatchIndex(line, -1) {
			var numStr string
			asPrefixed := false
			if m[2] >= 0 {
				numStr = line[m[2]:m[3]]
				asPrefixed = true
			} else {
				numStr = line[m[4]:m[5]]
			}
			start := m[0]
			end := m[1]
			a, err := asnum.Parse(numStr)
			if err != nil {
				continue
			}
			n := uint32(a)

			// Token-shape rejections.
			if partOfDottedQuad(line, start, end) {
				out = append(out, Mention{ASN: a, Verdict: VerdictNoise, Reason: "part of an IP address or decimal"})
				continue
			}
			if phoneShaped(line, start, end) {
				out = append(out, Mention{ASN: a, Verdict: VerdictNoise, Reason: "phone-number shaped"})
				continue
			}

			switch {
			case lineNoise && !asPrefixed:
				out = append(out, Mention{ASN: a, Verdict: VerdictNoise,
					Reason: "numeric context cue: " + lineNoiseCue})
			case !asPrefixed && looksLikeYear(n):
				out = append(out, Mention{ASN: a, Verdict: VerdictNoise, Reason: "looks like a year"})
			case lineUp:
				out = append(out, Mention{ASN: a, Verdict: VerdictUpstream,
					Reason: "connectivity context cue: " + lineUpCue})
			case lineSib && (asPrefixed || (field == "aka" && n >= 256)):
				out = append(out, Mention{ASN: a, Verdict: VerdictSibling,
					Reason: "affiliation cue: " + lineSibCue})
			case lineSib:
				// An affiliation cue next to a bare number ("Tier 3
				// compliant", "owns 2 datacenters") is not an ASN claim.
				out = append(out, Mention{ASN: a, Verdict: VerdictNoise,
					Reason: "bare number despite affiliation cue"})
			case inUpstreamSection:
				out = append(out, Mention{ASN: a, Verdict: VerdictUpstream,
					Reason: "inside a connectivity listing"})
			case field == "aka" && (asPrefixed || n >= 256):
				// Bare small numbers in aka are brand suffixes ("Level
				// 3", "Net 1"), not ASNs; real bare ASN listings in aka
				// are larger.
				out = append(out, Mention{ASN: a, Verdict: VerdictSibling,
					Reason: "aka lists alternate identities"})
			case field == "aka":
				out = append(out, Mention{ASN: a, Verdict: VerdictNoise,
					Reason: "small bare number in aka reads as a brand suffix"})
			case asPrefixed:
				out = append(out, Mention{ASN: a, Verdict: VerdictSibling,
					Reason: "explicit ASN reference without contrary context"})
			default:
				out = append(out, Mention{ASN: a, Verdict: VerdictNoise,
					Reason: "bare number without affiliation context"})
			}
		}
	}
	return out
}

// partOfDottedQuad reports whether the mention is flanked by ".<digit>"
// or "<digit>." — an IP address octet or a decimal fraction.
func partOfDottedQuad(line string, start, end int) bool {
	if start >= 2 && line[start-1] == '.' && isDigit(line[start-2]) {
		return true
	}
	if end+1 < len(line) && line[end] == '.' && isDigit(line[end+1]) {
		return true
	}
	return false
}

// phoneShaped reports whether the mention participates in a telephone-
// looking digit run: a leading '+', or digit groups joined by -/()/spaces
// totalling 8+ digits.
func phoneShaped(line string, start, end int) bool {
	// Expand left and right over phone-ish characters.
	l := start
	for l > 0 && isPhoneChar(line[l-1]) {
		l--
	}
	r := end
	for r < len(line) && isPhoneChar(line[r]) {
		r++
	}
	run := line[l:r]
	if strings.Contains(run, "+") {
		return true
	}
	digits := 0
	groups := 1
	for _, ch := range run {
		if ch >= '0' && ch <= '9' {
			digits++
		}
		if ch == '-' || ch == '(' || ch == ')' {
			groups++
		}
	}
	return digits >= 8 && groups >= 3
}

func isPhoneChar(b byte) bool {
	return (b >= '0' && b <= '9') || b == '-' || b == '(' || b == ')' || b == '+' || b == ' '
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

// ExtractSiblings runs the engine over a record's notes and aka with
// the full multilingual lexicon and returns the deduplicated sibling
// ASNs plus a human-readable reason trail (the "Also explain why" part
// of the Listing 2 prompt).
func ExtractSiblings(notes, aka string) (siblings []asnum.ASN, reasons []string) {
	return extractSiblings(fullLexicon, notes, aka)
}

func extractSiblings(lex lexicon, notes, aka string) (siblings []asnum.ASN, reasons []string) {
	seen := make(map[asnum.ASN]bool)
	for _, m := range append(extractField(lex, "notes", notes), extractField(lex, "aka", aka)...) {
		if m.Verdict != VerdictSibling || seen[m.ASN] {
			continue
		}
		seen[m.ASN] = true
		siblings = append(siblings, m.ASN)
		reasons = append(reasons, m.ASN.String()+": "+m.Reason)
	}
	asnum.Sort(siblings)
	return siblings, reasons
}
