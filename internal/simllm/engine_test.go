package simllm

import (
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
)

func siblingsOf(notes, aka string) []asnum.ASN {
	s, _ := ExtractSiblings(notes, aka)
	return s
}

func hasASN(list []asnum.ASN, a asnum.ASN) bool {
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}

// TestDeutscheTelekomExample mirrors Figure 4: subsidiaries reported in
// unstructured text must be extracted.
func TestDeutscheTelekomExample(t *testing.T) {
	notes := `Deutsche Telekom Global Carrier is the international wholesale arm.
Our European subsidiaries include Magyar Telekom (AS5483), Slovak Telekom (AS6855) and Hrvatski Telekom (AS5391).`
	got := siblingsOf(notes, "")
	for _, want := range []asnum.ASN{5483, 6855, 5391} {
		if !hasASN(got, want) {
			t.Errorf("missing sibling %v in %v", want, got)
		}
	}
}

// TestMaxihostExample mirrors Listing 1 / Appendix B: an upstream
// connectivity listing must extract nothing.
func TestMaxihostExample(t *testing.T) {
	notes := `Through the Bare Metal Cloud proprietary platform, Maxihost deploys high-performance physical servers in multiple regions around the globe. Maxihost owns a Tier 3 compliant Datacenter in Sao Paulo, where its headquarter is located. See more at https://www.maxihost.com/

We connect directly with the following ISPs,
- Algar (AS16735)
- Sparkle (AS6762)
- Voxility (AS3223)
- GTT (AS3257)
- Cogent (AS174)
- FL-IX (Florida Internet Exchange)
- IX.br (Brazilian Internet Exchange)
- Equinix Exchange
- Any2 California (CoreSite Exchange)
- DE-CIX New York
- DE-CIX Dallas
- NSW-IX (Australia Internet Exchange)`
	got := siblingsOf(notes, "")
	if len(got) != 0 {
		t.Errorf("upstream listing extracted as siblings: %v", got)
	}
}

func TestAkaDefaultsToSibling(t *testing.T) {
	got := siblingsOf("", "Level 3, AS3549, 11213")
	if !hasASN(got, 3549) || !hasASN(got, 11213) {
		t.Errorf("aka numbers should be siblings: %v", got)
	}
}

func TestMultilingualCues(t *testing.T) {
	cases := []struct {
		notes string
		want  asnum.ASN
	}{
		{"Somos parte del mismo grupo que AS26615.", 26615},
		{"Esta red pertenece a la misma organización que AS10429.", 10429},
		{"Wir sind eine Tochtergesellschaft der Telekom (AS3320).", 3320},
		{"Cette société est une filiale d'Orange, AS5511.", 5511},
		{"Rede do mesmo grupo que AS28573.", 28573},
	}
	for _, c := range cases {
		got := siblingsOf(c.notes, "")
		if !hasASN(got, c.want) {
			t.Errorf("notes %q: missing %v (got %v)", c.notes, c.want, got)
		}
	}
}

func TestNoiseRejection(t *testing.T) {
	cases := []string{
		"Contact us: phone +1 (555) 123-4567",
		"NOC: tel 555-123-9999",
		"Founded in 1998, we serve the region.",
		"Max prefixes: 4000",
		"Visit us at 1250 Main Street, Suite 400",
		"Our NOC IP is 192.0.2.45",
		"MTU 9000 supported on all ports",
		"Copyright 2024",
	}
	for _, notes := range cases {
		if got := siblingsOf(notes, ""); len(got) != 0 {
			t.Errorf("notes %q: spurious siblings %v", notes, got)
		}
	}
}

func TestBareNumberInNotesRejected(t *testing.T) {
	if got := siblingsOf("We are reachable under 64496 whenever.", ""); len(got) != 0 {
		t.Errorf("bare number accepted: %v", got)
	}
	// But an explicit AS reference with no contrary context is accepted.
	if got := siblingsOf("See also AS64496.", ""); !hasASN(got, 64496) {
		t.Errorf("explicit AS reference rejected: %v", got)
	}
}

func TestUpstreamCuesInline(t *testing.T) {
	cases := []string{
		"Our upstream is AS174.",
		"Transit provided by AS3356 and AS1299.",
		"We are peering with AS6939 at several IXPs.",
		"as-in: 65001:100, as-out announce to AS2914",
	}
	for _, notes := range cases {
		if got := siblingsOf(notes, ""); len(got) != 0 {
			t.Errorf("notes %q: connectivity ASNs extracted: %v", notes, got)
		}
	}
}

func TestSectionEndsAtProse(t *testing.T) {
	notes := `We connect with the following upstreams:
- AS174
- AS3356

Our sister network AS64500 serves the north region.`
	got := siblingsOf(notes, "")
	if hasASN(got, 174) || hasASN(got, 3356) {
		t.Errorf("upstream list leaked: %v", got)
	}
	if !hasASN(got, 64500) {
		t.Errorf("sibling after section missed: %v", got)
	}
}

func TestYearsInAka(t *testing.T) {
	// Years are rejected even in aka when bare.
	if got := siblingsOf("", "operating since 2010"); len(got) != 0 {
		t.Errorf("year in aka accepted: %v", got)
	}
}

func TestMixedVerdicts(t *testing.T) {
	notes := `We also operate AS64501 (our CDN division).
Upstream transit: AS174.
Phone: +44 20 7946 0958.`
	mentions := ExtractField("notes", notes)
	verdicts := map[asnum.ASN]Verdict{}
	for _, m := range mentions {
		verdicts[m.ASN] = m.Verdict
	}
	if verdicts[64501] != VerdictSibling {
		t.Errorf("AS64501 verdict = %v", verdicts[64501])
	}
	if verdicts[174] != VerdictUpstream {
		t.Errorf("AS174 verdict = %v", verdicts[174])
	}
}

func TestDeterminism(t *testing.T) {
	notes := "Our subsidiaries: AS1 AS2 AS3. Upstream AS174. Phone 555-123-4567 x89."
	a1, r1 := ExtractSiblings(notes, "aka AS99")
	a2, r2 := ExtractSiblings(notes, "aka AS99")
	if len(a1) != len(a2) || len(r1) != len(r2) {
		t.Fatal("nondeterministic extraction")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("nondeterministic sibling order")
		}
	}
}

func TestDedupAcrossFields(t *testing.T) {
	got := siblingsOf("Sister network AS64500.", "AS64500")
	count := 0
	for _, a := range got {
		if a == 64500 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("AS64500 appears %d times: %v", count, got)
	}
}
