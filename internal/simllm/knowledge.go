package simllm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"github.com/nu-aqualab/borges/internal/websim"
)

// The simulated model's "pretrained world knowledge": the favicons of
// popular web frameworks and hosting technologies, and the brand logos of
// major telecommunications groups. A vision-capable LLM recognises the
// default Bootstrap or WordPress icon, and the Claro or Orange logo, from
// pretraining; the simulation encodes the same knowledge as a registry of
// icon fingerprints over the deterministic websim icon space.
//
// Favicon identity conventions used across the synthetic corpus:
//
//	"framework:<name>" — a default icon shipped by a web technology
//	"brand:<name>"     — a brand logo the model is assumed to know
//	anything else      — an icon the model has never seen
//
// (Table 2 of the paper contrasts exactly these cases: the Claro logo vs
// the default Bootstrap favicon.)

// FrameworkNames lists the web technologies whose default favicons the
// model recognises; values are the display names it replies with.
var FrameworkNames = map[string]string{
	"bootstrap":   "Bootstrap",
	"wordpress":   "WordPress",
	"godaddy":     "GoDaddy",
	"ixcsoft":     "IXC Soft",
	"wix":         "Wix",
	"squarespace": "Squarespace",
	"cpanel":      "cPanel",
	"plesk":       "Plesk",
	"apache":      "Apache HTTP Server",
	"nginx":       "nginx",
	"mikrotik":    "MikroTik",
	"pfsense":     "pfSense",
}

// KnownBrands lists major telecom brands whose logos the model
// recognises; values are the display names it replies with.
var KnownBrands = map[string]string{
	"claro":            "Claro",
	"orange":           "Orange",
	"digicel":          "Digicel",
	"tigo":             "TIGO",
	"telefonica":       "Telefonica",
	"movistar":         "Movistar",
	"t-mobile":         "T-Mobile",
	"deutsche-telekom": "Deutsche Telekom",
	"vodafone":         "Vodafone",
	"telia":            "Telia",
	"telenor":          "Telenor",
	"lumen":            "Lumen",
	"cogent":           "Cogent",
	"ntt":              "NTT",
	"telkom-indonesia": "Telkom Indonesia",
	"charter":          "Charter",
	"virgin":           "Virgin",
	"iliad":            "Free (Iliad)",
	"chunghwa":         "Chunghwa Telecom",
	"jcom":             "J:COM",
	"claro-brasil":     "Claro Brasil",
	"cablevision-mx":   "Cablevision Mexico",
	"lg-powercomm":     "LG Powercomm",
	"act-fibernet":     "ACT Fibernet",
	"telecom-hulum":    "Telecom Hulum",
	"brm":              "BRM (Brasil)",
	"gigamais":         "GigaMais Telecom",
	"zscaler":          "Zscaler",
	"cable-wireless":   "Cable & Wireless",
	"columbus":         "Columbus Networks",
	"mainone":          "MainOne",
	"leaseweb":         "Leaseweb",
	"contabo":          "Contabo",
	"softlayer":        "SoftLayer",
	"edgio":            "Edgio",
	"akamai":           "Akamai",
	"google":           "Google",
	"amazon":           "Amazon",
	"microsoft":        "Microsoft",
	"cloudflare":       "Cloudflare",
	"netflix":          "Netflix",
	"apple":            "Apple",
	"facebook":         "Facebook",
}

// iconKnowledge maps icon fingerprints (hex SHA-256 of the icon bytes)
// to what the model "sees" in the image.
type iconKnowledge struct {
	frameworkByHash map[string]string
	brandByHash     map[string]string
}

func hashIconID(id string) string {
	sum := sha256.Sum256(websim.FaviconBytes(id))
	return hex.EncodeToString(sum[:])
}

// FrameworkVariants is how many distinct default-icon variants of each
// framework the model recognises (real frameworks ship many versions and
// hosting-provider skins of their default icons; the paper's classifier
// corpus contains 116 distinct framework favicons).
const FrameworkVariants = 16

func newIconKnowledge() *iconKnowledge {
	k := &iconKnowledge{
		frameworkByHash: make(map[string]string, len(FrameworkNames)*FrameworkVariants),
		brandByHash:     make(map[string]string, len(KnownBrands)),
	}
	for id, name := range FrameworkNames {
		k.frameworkByHash[hashIconID("framework:"+id)] = name
		for v := 0; v < FrameworkVariants; v++ {
			k.frameworkByHash[hashIconID(FrameworkVariantIconID(id, v))] = name
		}
	}
	for id, name := range KnownBrands {
		k.brandByHash[hashIconID("brand:"+id)] = name
	}
	return k
}

// FrameworkVariantIconID returns the websim favicon identity for the
// v-th default-icon variant of a framework key.
func FrameworkVariantIconID(key string, v int) string {
	return fmt.Sprintf("framework:%s#%d", key, v)
}

// FrameworkIconID returns the websim favicon identity for a framework
// key (for corpus builders).
func FrameworkIconID(key string) string { return "framework:" + key }

// BrandIconID returns the websim favicon identity for a known-brand key
// (for corpus builders).
func BrandIconID(key string) string { return "brand:" + key }
