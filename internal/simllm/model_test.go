package simllm

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/ner"
	"github.com/nu-aqualab/borges/internal/websim"
)

func TestIEPromptRoundTrip(t *testing.T) {
	m := NewModel()
	rec := ner.Record{
		ASN:   3320,
		Notes: "Our European subsidiaries include Slovak Telekom (AS6855) and Hrvatski Telekom (AS5391).",
		Aka:   "DTAG",
	}
	resp, err := m.Complete(context.Background(), llm.Request{
		Model:    "gpt-4o-mini",
		Messages: []llm.Message{{Role: llm.RoleUser, Content: ner.BuildPrompt(rec)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	siblings, reason, err := ner.ParseResponse(resp.Content)
	if err != nil {
		t.Fatal(err)
	}
	if len(siblings) != 2 || siblings[0] != 5391 || siblings[1] != 6855 {
		t.Errorf("siblings = %v", siblings)
	}
	if reason == "" {
		t.Error("reason should explain the choice")
	}
	if m.IECalls() != 1 || m.ClassifierCalls() != 0 {
		t.Errorf("counters: ie=%d cls=%d", m.IECalls(), m.ClassifierCalls())
	}
}

func TestIEPromptMultilineNotes(t *testing.T) {
	m := NewModel()
	rec := ner.Record{
		ASN: 262287,
		Notes: `Maxihost deploys servers globally.

We connect directly with the following ISPs,
- Algar (AS16735)
- Cogent (AS174)`,
		Aka: "Latitude.sh",
	}
	resp, err := m.Complete(context.Background(), llm.Request{
		Messages: []llm.Message{{Role: llm.RoleUser, Content: ner.BuildPrompt(rec)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	siblings, _, err := ner.ParseResponse(resp.Content)
	if err != nil {
		t.Fatal(err)
	}
	if len(siblings) != 0 {
		t.Errorf("upstream listing extracted: %v", siblings)
	}
}

func TestIEResponseIsValidJSON(t *testing.T) {
	m := NewModel()
	rec := ner.Record{ASN: 1, Notes: `Quotes "inside" notes with AS2 sibling of ours`, Aka: ""}
	resp, err := m.Complete(context.Background(), llm.Request{
		Messages: []llm.Message{{Role: llm.RoleUser, Content: ner.BuildPrompt(rec)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var payload map[string]any
	if err := json.Unmarshal([]byte(resp.Content), &payload); err != nil {
		t.Fatalf("response not valid JSON: %v\n%s", err, resp.Content)
	}
}

func classifierMsg(urls []string, iconID string) llm.Message {
	var icon []byte
	if iconID != "" {
		icon = websim.FaviconBytes(iconID)
	}
	quoted := make([]string, len(urls))
	for i, u := range urls {
		quoted[i] = "'" + u + "'"
	}
	content := "Accessing these URLs [" + strings.Join(quoted, ", ") + "] returned the attached favicon. " +
		"If it is a telecommunications company, what is the company's name? If it is a subsidiary, provide the parent company's name. " +
		"If it is not a telecommunications company, is it a hosting technology? Reply only with the name of the company or technology. " +
		"If it is none of the above, reply 'I don't know'."
	return llm.Message{Role: llm.RoleUser, Content: content, Images: [][]byte{icon}}
}

func classify(t *testing.T, m *Model, urls []string, iconID string) string {
	t.Helper()
	resp, err := m.Complete(context.Background(), llm.Request{
		Messages: []llm.Message{classifierMsg(urls, iconID)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Content
}

func TestClassifierFramework(t *testing.T) {
	m := NewModel()
	// Table 2's Bootstrap example: unrelated domains, default framework icon.
	reply := classify(t, m, []string{
		"https://www.anosbd.com/", "https://www.rptechzone.in/",
		"https://bapenda.riau.go.id/", "http://www.conexaointernet.com.br/",
	}, FrameworkIconID("bootstrap"))
	if reply != "Bootstrap" {
		t.Errorf("reply = %q, want Bootstrap", reply)
	}
	if !IsFramework(reply) {
		t.Error("IsFramework should recognise the reply")
	}
}

func TestClassifierKnownBrand(t *testing.T) {
	m := NewModel()
	// Claro: different domains, recognised logo.
	reply := classify(t, m, []string{
		"https://www.clarochile.cl/personas/", "https://www.claro.com.do/personas/",
		"https://www.claropr.com/personas/",
	}, BrandIconID("claro"))
	if reply != "Claro" {
		t.Errorf("reply = %q, want Claro", reply)
	}
	if IsFramework(reply) || IsDontKnow(reply) {
		t.Error("Claro is a company")
	}
}

func TestClassifierDomainSimilarity(t *testing.T) {
	m := NewModel()
	// Unknown logo, but domains share a stem.
	reply := classify(t, m, []string{
		"https://www.acmetelecom.com/", "https://www.acmetel.net/",
	}, "site:acme")
	if IsDontKnow(reply) || IsFramework(reply) {
		t.Errorf("reply = %q, want a company name", reply)
	}
	if !strings.HasPrefix(strings.ToLower(reply), "acmetel") {
		t.Errorf("reply = %q, want the shared stem", reply)
	}
}

// TestClassifierDECIXFailureMode mirrors §5.3: same favicon, unrelated
// domain names, unknown logo → "I don't know" (a false negative by
// design).
func TestClassifierDECIXFailureMode(t *testing.T) {
	m := NewModel()
	reply := classify(t, m, []string{
		"https://www.de-cix.net/", "https://www.aqaba-ix.com/", "https://www.ruhr-cix.de/",
	}, "site:decix-unknown-logo")
	if !IsDontKnow(reply) {
		t.Errorf("reply = %q, want I don't know", reply)
	}
}

func TestClassifierIdenticalLabels(t *testing.T) {
	m := NewModel()
	reply := classify(t, m, []string{
		"https://www.orange.es/", "https://www.orange.pl/",
	}, "site:unknown-orange")
	if !strings.EqualFold(reply, "Orange") {
		t.Errorf("reply = %q, want Orange", reply)
	}
}

func TestClassifierShortStemRejected(t *testing.T) {
	m := NewModel()
	// "tele" stem: shared 4 chars but much shorter than the labels.
	reply := classify(t, m, []string{
		"https://www.telefonica.com/", "https://www.telekom.de/",
	}, "site:whatever")
	if !IsDontKnow(reply) {
		t.Errorf("reply = %q, want I don't know (generic stem)", reply)
	}
}

func TestUnsupportedPrompt(t *testing.T) {
	m := NewModel()
	_, err := m.Complete(context.Background(), llm.Request{
		Messages: []llm.Message{{Role: llm.RoleUser, Content: "What is the weather?"}},
	})
	if err == nil {
		t.Error("unsupported prompt should error")
	}
	if _, err := m.Complete(context.Background(), llm.Request{}); err == nil {
		t.Error("empty request should error")
	}
}

func TestContextCancellation(t *testing.T) {
	m := NewModel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.Complete(ctx, llm.Request{
		Messages: []llm.Message{{Role: llm.RoleUser, Content: "x"}},
	})
	if err == nil {
		t.Error("cancelled context should error")
	}
}

func TestModelDeterminism(t *testing.T) {
	m := NewModel()
	rec := ner.Record{ASN: 1, Notes: "sister network AS64500, upstream AS174", Aka: "AS64501"}
	req := llm.Request{Messages: []llm.Message{{Role: llm.RoleUser, Content: ner.BuildPrompt(rec)}}}
	r1, err1 := m.Complete(context.Background(), req)
	r2, err2 := m.Complete(context.Background(), req)
	if err1 != nil || err2 != nil || r1.Content != r2.Content {
		t.Errorf("nondeterministic: %q vs %q (%v %v)", r1.Content, r2.Content, err1, err2)
	}
}

func TestCounters(t *testing.T) {
	m := NewModel()
	classify(t, m, []string{"https://a.test/"}, "site:x")
	if m.ClassifierCalls() != 1 {
		t.Errorf("cls calls = %d", m.ClassifierCalls())
	}
	m.ResetCounters()
	if m.ClassifierCalls() != 0 || m.IECalls() != 0 {
		t.Error("ResetCounters failed")
	}

}
