package simllm

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"

	"github.com/nu-aqualab/borges/internal/llm"
)

// Model is a deterministic simulated LLM implementing llm.Provider. It
// answers the two prompt families Borges issues and rejects anything
// else, so accidental prompt drift fails loudly instead of silently
// producing garbage.
type Model struct {
	// Name is reported back in responses (default "sim-gpt-4o-mini").
	Name string

	profile   Profile
	knowledge *iconKnowledge

	ieCalls  atomic.Int64
	clsCalls atomic.Int64
}

// NewModel returns a simulated model with the paper's capability
// profile (GPT-4o-mini).
func NewModel() *Model {
	return NewModelWithProfile(ProfileGPT4oMini)
}

// lexicon selects the cue lists the model's profile understands.
func (m *Model) lexicon() lexicon {
	if m.profile.Multilingual {
		return fullLexicon
	}
	return englishLexicon
}

// IECalls returns how many information-extraction prompts were served.
func (m *Model) IECalls() int64 { return m.ieCalls.Load() }

// ClassifierCalls returns how many favicon-classification prompts were
// served.
func (m *Model) ClassifierCalls() int64 { return m.clsCalls.Load() }

// ResetCounters zeroes the per-prompt-family call counters.
func (m *Model) ResetCounters() {
	m.ieCalls.Store(0)
	m.clsCalls.Store(0)
}

// Prompt fragments used for dispatch. They quote stable phrases of the
// paper's Listing 2 and Listing 3 prompts.
const (
	ieMarker  = "The PeeringDB information for the ASN "
	clsMarker = "returned the attached favicon"
)

// Complete implements llm.Provider.
func (m *Model) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	if err := ctx.Err(); err != nil {
		return llm.Response{}, err
	}
	if len(req.Messages) == 0 {
		return llm.Response{}, fmt.Errorf("simllm: empty request")
	}
	last := req.Messages[len(req.Messages)-1]
	switch {
	case strings.Contains(last.Content, ieMarker):
		m.ieCalls.Add(1)
		content, err := m.answerIE(last.Content)
		if err != nil {
			return llm.Response{}, err
		}
		return m.respond(content), nil
	case strings.Contains(last.Content, clsMarker):
		m.clsCalls.Add(1)
		content, err := m.answerClassifier(last)
		if err != nil {
			return llm.Response{}, err
		}
		return m.respond(content), nil
	default:
		return llm.Response{}, fmt.Errorf("simllm: unsupported prompt (no known task marker): %q",
			head(last.Content, 60))
	}
}

func (m *Model) respond(content string) llm.Response {
	return llm.Response{
		Content: content,
		Model:   m.Name,
		Usage:   llm.Usage{PromptTokens: 0, CompletionTokens: len(content) / 4},
	}
}

func head(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// answerIE parses a Listing 2 prompt, runs the sibling-extraction engine
// over the embedded notes and aka, and renders the JSON reply the
// format instructions request.
func (m *Model) answerIE(prompt string) (string, error) {
	notes, aka, err := parseIEPrompt(prompt)
	if err != nil {
		return "", err
	}
	siblings, reasons := extractSiblings(m.lexicon(), notes, aka)
	payload := struct {
		Siblings []string `json:"siblings"`
		Reason   string   `json:"reason"`
	}{Siblings: []string{}}
	for _, a := range siblings {
		payload.Siblings = append(payload.Siblings, a.String())
	}
	if len(reasons) == 0 {
		payload.Reason = "no sibling ASNs are explicitly reported in the provided fields"
	} else {
		payload.Reason = strings.Join(reasons, "; ")
	}
	blob, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("simllm: marshal reply: %w", err)
	}
	return string(blob), nil
}

// parseIEPrompt recovers the notes and aka bodies from a Listing 2
// prompt.
func parseIEPrompt(prompt string) (notes, aka string, err error) {
	iNotes := strings.Index(prompt, "\nNotes: ")
	if iNotes < 0 {
		return "", "", fmt.Errorf("simllm: IE prompt missing Notes field")
	}
	rest := prompt[iNotes+len("\nNotes: "):]
	// The AKA marker is searched from the end of the region before the
	// format instructions, so multi-paragraph notes survive.
	iResp := strings.Index(rest, "\nRespond with a single JSON object")
	if iResp < 0 {
		iResp = len(rest)
	}
	region := rest[:iResp]
	iAka := strings.LastIndex(region, "\nAKA: ")
	if iAka < 0 {
		return "", "", fmt.Errorf("simllm: IE prompt missing AKA field")
	}
	notes = strings.TrimSpace(region[:iAka])
	aka = strings.TrimSpace(region[iAka+len("\nAKA: "):])
	return notes, aka, nil
}

// answerClassifier parses a Listing 3 prompt (URL list in the text, the
// favicon attached as an image) and names the company or technology.
func (m *Model) answerClassifier(msg llm.Message) (string, error) {
	urls, err := parseClassifierPrompt(msg.Content)
	if err != nil {
		return "", err
	}
	var icon []byte
	if len(msg.Images) > 0 {
		icon = msg.Images[0]
	}
	return m.knowledge.classify(icon, urls, m.profile), nil
}

// parseClassifierPrompt extracts the URL list from "Accessing these
// URLs ['a', 'b'] returned the attached favicon…".
func parseClassifierPrompt(content string) ([]string, error) {
	start := strings.Index(content, "[")
	end := strings.Index(content, "]")
	if start < 0 || end < start {
		return nil, fmt.Errorf("simllm: classifier prompt missing URL list")
	}
	list := content[start+1 : end]
	var urls []string
	for _, part := range strings.Split(list, ",") {
		u := strings.Trim(strings.TrimSpace(part), `'"`)
		if u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("simllm: classifier prompt has empty URL list")
	}
	return urls, nil
}
