package simllm

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"

	"github.com/nu-aqualab/borges/internal/urlmatch"
)

// ClassifyIcon answers the Listing 3 question for one favicon (raw
// bytes) and the final URLs displaying it: the name of the company or
// hosting technology, or "I don't know".
//
// The decision mirrors what a vision LLM does with the same inputs:
//
//  1. A recognised framework/hosting-technology icon names the
//     technology (Bootstrap, WordPress, IXC Soft, …).
//  2. A recognised brand logo names the brand.
//  3. Otherwise the domain names themselves are read: URLs whose brand
//     labels are identical, or share a meaningful common stem
//     ("clarochile" / "claropr" → "claro"), name the company.
//  4. Anything else — e.g. DE-CIX vs AQABA-IX vs Ruhr-CIX, same logo
//     but unrelated names — yields "I don't know" (the paper's §5.3
//     reports exactly this failure mode).
func (k *iconKnowledge) ClassifyIcon(icon []byte, urls []string) string {
	return k.classify(icon, urls, ProfileGPT4oMini)
}

// classify applies the profile's visual knowledge before falling back
// to domain-name reasoning (which every profile retains).
func (k *iconKnowledge) classify(icon []byte, urls []string, p Profile) string {
	if len(icon) > 0 {
		sum := sha256.Sum256(icon)
		h := hex.EncodeToString(sum[:])
		if p.KnowsFrameworks {
			if name, ok := k.frameworkByHash[h]; ok {
				return name
			}
		}
		if p.KnowsBrands {
			if name, ok := k.brandByHash[h]; ok {
				return name
			}
		}
	}
	if stem := CommonBrandStem(urls); stem != "" {
		return displayName(stem)
	}
	return "I don't know"
}

// CommonBrandStem extracts a shared brand token from a set of URLs, or
// "" when their names are unrelated. All brand labels must either be
// identical or share a common prefix of at least 4 characters that
// covers most of the shortest label.
func CommonBrandStem(urls []string) string {
	labels := make([]string, 0, len(urls))
	for _, u := range urls {
		l := urlmatch.BrandLabelOfURL(u)
		if l == "" {
			return ""
		}
		labels = append(labels, l)
	}
	if len(labels) == 0 {
		return ""
	}
	sort.Strings(labels)
	shortest := labels[0]
	for _, l := range labels {
		if len(l) < len(shortest) {
			shortest = l
		}
	}
	stem := labels[0]
	for _, l := range labels[1:] {
		n := urlmatch.SharedPrefixLen(stem, l)
		stem = stem[:n]
	}
	if len(stem) < 4 {
		return ""
	}
	// The stem must dominate the shortest label: "claro" vs
	// "clarochile" (5 of 5) passes; "tele" vs "telefonica"/"telekom"
	// (4 of 7) does not — distinct brands often share short generic
	// prefixes.
	if len(stem)*3 < len(shortest)*2 {
		return ""
	}
	return stem
}

// displayName renders a brand stem the way a model would name the
// company: known brands get their canonical names, others are
// title-cased.
func displayName(stem string) string {
	if name, ok := KnownBrands[stem]; ok {
		return name
	}
	if stem == "" {
		return stem
	}
	return strings.ToUpper(stem[:1]) + stem[1:]
}

// IsDontKnow reports whether a classifier reply is the "none of the
// above" answer.
func IsDontKnow(reply string) bool {
	r := strings.ToLower(strings.TrimSpace(reply))
	return r == "" || strings.Contains(r, "don't know") || strings.Contains(r, "dont know")
}

// IsFramework reports whether a classifier reply names a known hosting
// technology rather than a company.
func IsFramework(reply string) bool {
	r := strings.TrimSpace(reply)
	for _, name := range FrameworkNames {
		if strings.EqualFold(r, name) {
			return true
		}
	}
	return false
}
