package megascale

import (
	"testing"

	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/synth"
	"github.com/nu-aqualab/borges/internal/vfs"
)

// smokeRSSCeiling is the hard peak-RSS bound for the scaled-down
// streaming pipeline below. Calibrated on a race-detector run: the
// streaming path peaks at ~50 MiB, while the buffered equivalent
// (full Generate + in-memory set ingest) peaks at ~240 MiB — so
// 128 MiB gives ~2.5x headroom against allocator noise yet still
// trips on a regression back to O(corpus) buffering.
const smokeRSSCeiling = 128 << 20

// smokeN is the scaled-down universe: big enough that an accidental
// full-corpus buffer shows up in RSS, small enough for the race
// detector on a one-core CI runner.
const smokeN = 32768

// TestStreamingBoundedRSS is the megascale-smoke assertion: streaming
// generation (chunks discarded as they are yielded) followed by a
// spill-backed consolidation with a deliberately tiny 1 MiB shard
// budget must stay under a hard RSS ceiling. The full-scale numbers
// live in BENCH_megascale.json; this is the cheap guard that the
// constant-memory property survives day-to-day changes.
func TestStreamingBoundedRSS(t *testing.T) {
	if testing.Short() {
		t.Skip("mega-scale smoke skipped in -short mode")
	}
	rss, ok, reset := measurePeak(func() {
		err := synth.GenerateStream(streamCfg(smokeN), 256, func(*synth.Dataset) error {
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		builder := cluster.NewBuilder()
		addUniverse(builder, smokeN)
		if err := builder.SpillToDisk(vfs.OS, t.TempDir(), 1<<20); err != nil {
			t.Fatal(err)
		}
		addMegaSets(builder, smokeN)
		m, err := builder.BuildShardedChecked(benchNamer, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumOrgs() == 0 {
			t.Fatal("consolidation produced no organizations")
		}
	})
	if !ok {
		t.Skip("peak RSS unavailable on this platform")
	}
	if !reset {
		// Read-only /proc: the value below is the process-lifetime
		// peak, which still bounds this phase from above.
		t.Log("clear_refs unavailable; asserting on process-lifetime peak RSS")
	}
	t.Logf("peak RSS %d bytes (%.1f MiB), ceiling %d", rss, float64(rss)/(1<<20), int64(smokeRSSCeiling))
	if rss > smokeRSSCeiling {
		t.Fatalf("streaming pipeline peak RSS %d bytes exceeds hard ceiling %d", rss, int64(smokeRSSCeiling))
	}
}
