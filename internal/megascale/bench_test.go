// Mega-scale memory benchmarks: peak RSS and wall-clock for the
// streaming corpus generator, spill-to-disk vs in-memory
// consolidation, snapshot build, and buffered vs memory-mapped cold
// start, at n=131072 and n=1M ASNs. Each benchmark records a
// machine-readable observation that TestMain serializes to
// BENCH_megascale.json, the committed artifact backing the bounded-
// memory claims in DESIGN.md.
//
//	go test -run=NONE -bench=Mega -benchtime=1x ./internal/megascale/
package megascale

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/memprobe"
	"github.com/nu-aqualab/borges/internal/serve"
	"github.com/nu-aqualab/borges/internal/synth"
	"github.com/nu-aqualab/borges/internal/vfs"
)

// benchRecord is one serialized benchmark observation.
type benchRecord struct {
	Name    string             `json:"name"`
	N       int                `json:"n"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

var (
	benchRecMu sync.Mutex
	benchRecs  []benchRecord
)

// recordBench snapshots a finished benchmark's timing plus extra
// metrics for the BENCH_megascale.json artifact. A repeated name keeps
// only the invocation with the most iterations.
func recordBench(b *testing.B, metrics map[string]float64) {
	benchRecMu.Lock()
	defer benchRecMu.Unlock()
	r := benchRecord{Name: b.Name(), N: b.N, Metrics: metrics}
	if b.N > 0 {
		r.NsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	}
	for i := range benchRecs {
		if benchRecs[i].Name == r.Name {
			if r.N >= benchRecs[i].N {
				benchRecs[i] = r
			}
			return
		}
	}
	benchRecs = append(benchRecs, r)
}

func TestMain(m *testing.M) {
	code := m.Run()
	benchRecMu.Lock()
	recs := benchRecs
	benchRecMu.Unlock()
	if len(recs) > 0 {
		sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
		blob, err := json.MarshalIndent(struct {
			Benchmarks []benchRecord `json:"benchmarks"`
		}{recs}, "", "  ")
		if err == nil {
			blob = append(blob, '\n')
			err = os.WriteFile("BENCH_megascale.json", blob, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "writing BENCH_megascale.json:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// asnsPerUnitScale is how many WHOIS ASNs synth emits at Scale 1.0
// (the calibrated corpus of scaled()); Scale n/asnsPerUnitScale
// targets an n-ASN universe.
const asnsPerUnitScale = 117431

// megaScales are the target universe sizes. The larger one is the
// acceptance scale: one million ASNs.
var megaScales = []int{131072, 1 << 20}

func streamCfg(n int) synth.Config {
	return synth.Config{Seed: 11, Scale: float64(n) / asnsPerUnitScale}
}

// measurePeak runs f after trimming the process footprint
// (FreeOSMemory) and resetting the kernel RSS high-water mark, then
// reports the phase's peak RSS. reset reports whether per-phase
// isolation took effect; when it is false the value is the
// process-lifetime peak (read-only /proc or a pre-4.0 kernel) and ok
// is false where VmHWM is unavailable entirely (non-Linux).
func measurePeak(f func()) (rss int64, ok, reset bool) {
	debug.FreeOSMemory()
	reset = memprobe.ResetPeak()
	f()
	rss, ok = memprobe.PeakRSS()
	return rss, ok, reset
}

func rssMetrics(m map[string]float64, rss int64, ok, reset bool) map[string]float64 {
	if ok {
		m["peak_rss_bytes"] = float64(rss)
		m["peak_rss_isolated"] = 0
		if reset {
			m["peak_rss_isolated"] = 1
		}
	}
	return m
}

func benchNamer(members []asnum.ASN) string {
	return fmt.Sprintf("Org #%d", members[0])
}

// addUniverse registers ASNs 1..n.
func addUniverse(b *cluster.Builder, n int) {
	for a := 1; a <= n; a++ {
		b.AddUniverse(asnum.ASN(a))
	}
}

// addMegaSets feeds 4n seeded sibling sets of 2–7 members drawn from
// 64-ASN blocks (the serve bench workload shape: heavy overlap
// collapses each block into one organization, so union-find cost
// dominates). Each set gets a fresh backing slice — exactly what a
// real ingest hands the builder, and what the in-memory path must
// retain until Build.
func addMegaSets(b *cluster.Builder, n int) {
	const blockSize = 64
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 4*n; i++ {
		size := rng.Intn(6) + 2
		set := cluster.SiblingSet{Source: cluster.Feature(i % cluster.NumFeatures)}
		base := rng.Intn(n) + 1
		blockLo := base - (base-1)%blockSize
		blockHi := min(blockLo+blockSize-1, n)
		for j := 0; j < size; j++ {
			a := base + rng.Intn(17) - 8
			if a < blockLo {
				a = blockLo
			}
			if a > blockHi {
				a = blockHi
			}
			set.ASNs = append(set.ASNs, asnum.ASN(a))
		}
		b.Add(set)
	}
}

// BenchmarkMegaGenerateStream drives the streaming generator and
// discards each chunk, the constant-memory producer path: peak RSS
// tracks the chunk size, not the corpus size.
func BenchmarkMegaGenerateStream(b *testing.B) {
	for _, n := range megaScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var asns, chunks int
			rss, ok, reset := measurePeak(func() {
				for i := 0; i < b.N; i++ {
					asns, chunks = 0, 0
					err := synth.GenerateStream(streamCfg(n), 512, func(ds *synth.Dataset) error {
						chunks++
						asns += ds.WHOIS.NumASNs()
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			recordBench(b, rssMetrics(map[string]float64{
				"target_asns": float64(n),
				"whois_asns":  float64(asns),
				"chunks":      float64(chunks),
			}, rss, ok, reset))
		})
	}
}

// BenchmarkMegaGenerateBuffered is the contrast: Generate assembles
// the whole corpus in memory, so peak RSS grows linearly with n.
func BenchmarkMegaGenerateBuffered(b *testing.B) {
	for _, n := range megaScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var ds *synth.Dataset
			rss, ok, reset := measurePeak(func() {
				for i := 0; i < b.N; i++ {
					var err error
					ds, err = synth.Generate(streamCfg(n))
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			recordBench(b, rssMetrics(map[string]float64{
				"target_asns": float64(n),
				"whois_asns":  float64(ds.WHOIS.NumASNs()),
			}, rss, ok, reset))
			runtime.KeepAlive(ds)
		})
	}
}

// BenchmarkMegaConsolidateInMemory ingests 4n sibling sets into the
// buffered builder and consolidates: the builder retains every set
// until Build, so peak RSS carries the full ingest.
func BenchmarkMegaConsolidateInMemory(b *testing.B) {
	for _, n := range megaScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var m *cluster.Mapping
			rss, ok, reset := measurePeak(func() {
				for i := 0; i < b.N; i++ {
					builder := cluster.NewBuilder()
					addUniverse(builder, n)
					addMegaSets(builder, n)
					m = builder.BuildSharded(benchNamer, 1)
				}
			})
			b.StopTimer()
			recordBench(b, rssMetrics(map[string]float64{
				"networks": float64(n),
				"sets":     float64(4 * n),
				"orgs":     float64(m.NumOrgs()),
			}, rss, ok, reset))
		})
	}
}

// BenchmarkMegaConsolidateSpill is the bounded-memory path: the same
// ingest flows through spill-to-disk shard files, so peak RSS is
// bounded by the shard buffer plus the consolidation structures — not
// by the number of sets.
func BenchmarkMegaConsolidateSpill(b *testing.B) {
	for _, n := range megaScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var m *cluster.Mapping
			var shards, spilled int
			var spillBytes int64
			rss, ok, reset := measurePeak(func() {
				for i := 0; i < b.N; i++ {
					builder := cluster.NewBuilder()
					addUniverse(builder, n)
					if err := builder.SpillToDisk(vfs.OS, b.TempDir(), 0); err != nil {
						b.Fatal(err)
					}
					addMegaSets(builder, n)
					shards, spilled, spillBytes = builder.SpillStats()
					var err error
					m, err = builder.BuildShardedChecked(benchNamer, 1)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			recordBench(b, rssMetrics(map[string]float64{
				"networks":    float64(n),
				"sets":        float64(4 * n),
				"orgs":        float64(m.NumOrgs()),
				"shards":      float64(shards),
				"spill_sets":  float64(spilled),
				"spill_bytes": float64(spillBytes),
			}, rss, ok, reset))
		})
	}
}

// megaMapping consolidates the standard workload once per scale for
// the snapshot-build and cold-start benchmarks.
func megaMapping(b *testing.B, n int) *cluster.Mapping {
	b.Helper()
	builder := cluster.NewBuilder()
	addUniverse(builder, n)
	addMegaSets(builder, n)
	return builder.BuildSharded(benchNamer, 0)
}

// BenchmarkMegaSnapshotBuild measures the pre-rendered snapshot build
// (tokenization, θ, histogram, body rendering) over the mega mapping.
func BenchmarkMegaSnapshotBuild(b *testing.B) {
	for _, n := range megaScales {
		m := megaMapping(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var snap *serve.Snapshot
			rss, ok, reset := measurePeak(func() {
				for i := 0; i < b.N; i++ {
					var err error
					snap, err = serve.NewSnapshot(m, "megascale")
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			recordBench(b, rssMetrics(map[string]float64{
				"networks": float64(n),
				"orgs":     float64(snap.Stats().Orgs),
			}, rss, ok, reset))
		})
	}
}

// BenchmarkMegaColdStart contrasts the buffered binary-artifact load
// (heap holds the whole file) with the memory-mapped load (heap holds
// only the decoded index; bodies serve off the page cache). The
// heap_delta_bytes metric is the retained Go-heap growth from one
// load, measured across forced GCs.
func BenchmarkMegaColdStart(b *testing.B) {
	for _, n := range megaScales {
		m := megaMapping(b, n)
		snap, err := serve.NewSnapshot(m, "megascale")
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(b.TempDir(), "snap.borges")
		if _, err := serve.WriteSnapshotFile(path, snap); err != nil {
			b.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		snap, m = nil, nil
		for _, mode := range []string{"buffered", "mapped"} {
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				var loaded *serve.Snapshot
				runtime.GC()
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					if mode == "mapped" {
						loaded, err = serve.LoadSnapshotFileMapped(path)
					} else {
						loaded, err = serve.LoadSnapshotFile(path)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				runtime.GC()
				runtime.ReadMemStats(&after)
				mapped := 0.0
				if loaded.MemoryMapped() {
					mapped = 1
				}
				recordBench(b, map[string]float64{
					"networks":         float64(n),
					"artifact_bytes":   float64(fi.Size()),
					"heap_delta_bytes": float64(after.HeapAlloc) - float64(before.HeapAlloc),
					"mapped":           mapped,
				})
				runtime.KeepAlive(loaded)
			})
		}
	}
}
