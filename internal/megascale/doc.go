// Package megascale holds the mega-scale memory benchmarks: peak-RSS
// and wall-clock measurements for streaming corpus generation,
// spill-to-disk vs in-memory consolidation, snapshot build, and
// buffered vs memory-mapped cold start, at n=131072 and n=1M ASNs.
// The bench TestMain serializes every observation to
// BENCH_megascale.json (committed alongside this package), and the CI
// megascale-smoke job runs the bounded-memory assertions at a scaled-
// down n under the race detector.
package megascale
