// Package cache implements the content-addressed result cache behind
// Borges's expensive stages. Both learning-based features run
// GPT-4o-mini at temperature 0 precisely so that "the model
// consistently produces the most probable next token, resulting in
// reproducible outputs" (§4.2); the same determinism contract makes
// every completion — and every resolved crawl of a canonical URL —
// safely memoizable. Re-running the pipeline over an updated snapshot,
// or sweeping the 16-cell Table 6 ablation grid, then only pays for
// work whose inputs actually changed.
//
// A Cache has two tiers:
//
//   - an in-memory LRU bounded by Options.MaxEntries, and
//   - an optional on-disk append-only JSONL log (Options.Dir) that
//     survives process restarts; entries are read back lazily by file
//     offset, so the memory bound holds regardless of log size.
//
// Keys are opaque strings; callers derive them from a SHA-256 of the
// full request (see Key, llm.RequestKey, and the crawler's option
// fingerprint), which makes the store content-addressed: a changed
// prompt, model, sampling parameter, or crawl option is a different
// entry, never a stale hit.
//
// GetOrFill adds singleflight deduplication: when many goroutines miss
// on one key concurrently — every network that reports the same
// website, every ablation cell that re-sends one prompt — exactly one
// executes the fill and the rest share its result.
package cache

import (
	"bufio"
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"github.com/nu-aqualab/borges/internal/vfs"
)

// Options configure a Cache. The zero value is usable: an in-memory
// LRU of DefaultMaxEntries entries and no disk tier.
type Options struct {
	// MaxEntries bounds the in-memory LRU tier (default
	// DefaultMaxEntries). The disk tier is never evicted.
	MaxEntries int
	// Dir enables the disk tier: entries are appended to
	// Dir/entries.jsonl and replayed (by offset, not into memory) when
	// a Cache is reopened on the same directory.
	Dir string
	// FS overrides the filesystem the disk tier uses (default the real
	// one). Chaos tests substitute a deterministic fault filesystem.
	FS vfs.FS
}

// DefaultMaxEntries is the default in-memory LRU capacity.
const DefaultMaxEntries = 4096

// Stats count cache traffic.
type Stats struct {
	// Hits are Get/GetOrFill calls served from either tier.
	Hits int64
	// DiskHits is the subset of Hits served by reading the disk log.
	DiskHits int64
	// Misses are calls that found no entry (GetOrFill then ran its
	// fill).
	Misses int64
	// Dedups are GetOrFill calls that piggybacked on another
	// goroutine's in-flight fill instead of running their own.
	Dedups int64
	// Evictions counts LRU entries dropped from the memory tier.
	Evictions int64
	// CorruptRecords counts disk-tier reads whose per-record content
	// hash (or JSONL framing) failed verification. Each such record is
	// dropped from the disk index — the lookup becomes a miss, and the
	// next Put for that key re-appends a fresh, intact line.
	CorruptRecords int64
	// Entries is the current memory-tier size; DiskEntries counts keys
	// indexed in the disk log.
	Entries     int
	DiskEntries int
}

// entry is one memory-tier element.
type entry struct {
	key string
	val []byte
}

// call is one in-flight singleflight fill.
type call struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache is a two-tier content-addressed store, safe for concurrent
// use.
type Cache struct {
	opts Options

	mu     sync.Mutex
	lru    *list.List // front = most recent; values are *entry
	index  map[string]*list.Element
	flight map[string]*call
	stats  Stats

	// Disk tier. offsets maps key → byte offset of its JSONL line;
	// log is the append handle (also used for ReadAt).
	offsets map[string]int64
	log     vfs.File
	logSize int64
}

// diskLine is the JSONL wire form of one disk-tier entry. H is the hex
// SHA-256 of V, written on every append and verified on every read, so
// a record silently damaged at rest (bit rot, torn sector) is detected
// instead of served. Lines from logs written before H existed carry no
// hash and are accepted as-is.
type diskLine struct {
	K string `json:"k"`
	V []byte `json:"v"` // encoding/json base64-encodes []byte
	H string `json:"h,omitempty"`
}

// New opens a Cache. With Options.Dir set, an existing log in that
// directory is indexed so previous runs' entries are visible.
func New(opts Options) (*Cache, error) {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = DefaultMaxEntries
	}
	c := &Cache{
		opts:   opts,
		lru:    list.New(),
		index:  make(map[string]*list.Element),
		flight: make(map[string]*call),
	}
	if opts.Dir != "" {
		if err := c.openLog(opts.Dir); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *Cache) openLog(dir string) error {
	fsys := vfs.Or(c.opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: create dir: %w", err)
	}
	path := filepath.Join(dir, "entries.jsonl")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("cache: open log: %w", err)
	}
	c.offsets = make(map[string]int64)
	// Index the existing log: record each complete line's offset, keep
	// the last occurrence of a key (later appends win). ReadBytes makes
	// newline termination explicit, so a torn final line (crash
	// mid-append) is detected and discarded rather than corrupting the
	// append offset.
	rd := bufio.NewReader(f)
	var off int64
	for {
		line, err := rd.ReadBytes('\n')
		if err != nil {
			if err != io.EOF {
				f.Close()
				return fmt.Errorf("cache: scan log: %w", err)
			}
			break // torn or empty tail: not indexed, overwritten by the next append
		}
		var dl diskLine
		if jerr := json.Unmarshal(line[:len(line)-1], &dl); jerr == nil && dl.K != "" {
			c.offsets[dl.K] = off
		}
		off += int64(len(line))
	}
	// Truncate a torn trailing write (crash mid-append) so future
	// appends produce valid lines.
	if err := f.Truncate(off); err != nil {
		f.Close()
		return fmt.Errorf("cache: truncate log: %w", err)
	}
	if _, err := f.Seek(off, 0); err != nil {
		f.Close()
		return fmt.Errorf("cache: seek log: %w", err)
	}
	c.log, c.logSize = f, off
	return nil
}

// Close releases the disk log handle. The memory tier stays usable.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log == nil {
		return nil
	}
	err := c.log.Close()
	c.log = nil
	return err
}

// Get returns the cached value for key, consulting the memory tier
// then the disk log. Disk hits are promoted into the LRU.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.getLocked(key, true)
}

// getLocked is Get under c.mu; count toggles hit/miss accounting so
// GetOrFill's second look (post-flight) doesn't double-count.
func (c *Cache) getLocked(key string, count bool) ([]byte, bool) {
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		if count {
			c.stats.Hits++
		}
		return el.Value.(*entry).val, true
	}
	if off, ok := c.offsets[key]; ok && c.log != nil {
		val, err := c.readAt(off, key)
		if err == nil {
			c.putLocked(key, val)
			if count {
				c.stats.Hits++
				c.stats.DiskHits++
			}
			return val, true
		}
		// The record is damaged (hash mismatch, torn framing, wrong
		// key at the offset). Drop it from the disk index: this lookup
		// is a miss, and because appendLocked skips only keys still in
		// offsets, the next Put for this key writes a fresh line — the
		// log self-heals instead of replaying corruption forever.
		c.stats.CorruptRecords++
		delete(c.offsets, key)
	}
	if count {
		c.stats.Misses++
	}
	return nil, false
}

// readAt decodes the JSONL line starting at off and returns its value
// when the key matches.
func (c *Cache) readAt(off int64, key string) ([]byte, error) {
	// Lines are bounded in practice (LLM responses, crawl outcomes,
	// ≤64KiB icons); read in chunks until the newline shows up.
	buf := make([]byte, 0, 4096)
	chunk := make([]byte, 4096)
	for {
		n, err := c.log.ReadAt(chunk, off+int64(len(buf)))
		buf = append(buf, chunk[:n]...)
		if i := bytes.IndexByte(buf, '\n'); i >= 0 {
			buf = buf[:i]
			break
		}
		if err != nil { // io.EOF with no newline: torn line
			return nil, fmt.Errorf("cache: unterminated log line at %d", off)
		}
	}
	var dl diskLine
	if err := json.Unmarshal(buf, &dl); err != nil {
		return nil, fmt.Errorf("cache: decode log line: %w", err)
	}
	if dl.K != key {
		return nil, fmt.Errorf("cache: log offset %d holds key %.16s…, want %.16s…", off, dl.K, key)
	}
	if dl.H != "" {
		sum := sha256.Sum256(dl.V)
		if dl.H != hex.EncodeToString(sum[:]) {
			return nil, fmt.Errorf("cache: log offset %d record hash mismatch for %.16s…", off, key)
		}
	}
	return dl.V, nil
}

// Put stores a value in both tiers.
func (c *Cache) Put(key string, val []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val)
	return c.appendLocked(key, val)
}

func (c *Cache) putLocked(key string, val []byte) {
	if el, ok := c.index[key]; ok {
		el.Value.(*entry).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.index[key] = c.lru.PushFront(&entry{key: key, val: val})
	for c.lru.Len() > c.opts.MaxEntries {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.index, oldest.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// appendLocked writes one JSONL line to the disk log, if enabled.
func (c *Cache) appendLocked(key string, val []byte) error {
	if c.log == nil {
		return nil
	}
	if _, ok := c.offsets[key]; ok {
		return nil // already durable; identical by content-addressing
	}
	sum := sha256.Sum256(val)
	line, err := json.Marshal(diskLine{K: key, V: val, H: hex.EncodeToString(sum[:])})
	if err != nil {
		return fmt.Errorf("cache: encode log line: %w", err)
	}
	line = append(line, '\n')
	if _, err := c.log.WriteAt(line, c.logSize); err != nil {
		return fmt.Errorf("cache: append log: %w", err)
	}
	c.offsets[key] = c.logSize
	c.logSize += int64(len(line))
	return nil
}

// GetOrFill returns the cached value for key, or runs fill to produce
// it. Concurrent callers that miss on the same key are deduplicated:
// one runs fill, the rest wait and share its result. Fill errors are
// returned to every waiter and are not cached.
func (c *Cache) GetOrFill(ctx context.Context, key string, fill func(ctx context.Context) ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if val, ok := c.getLocked(key, true); ok {
		c.mu.Unlock()
		return val, nil
	}
	if fl, ok := c.flight[key]; ok {
		c.stats.Dedups++
		c.mu.Unlock()
		select {
		case <-fl.done:
			return fl.val, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &call{done: make(chan struct{})}
	c.flight[key] = fl
	c.mu.Unlock()

	fl.val, fl.err = fill(ctx)
	c.mu.Lock()
	delete(c.flight, key)
	if fl.err == nil {
		c.putLocked(key, fl.val)
		if err := c.appendLocked(key, fl.val); err != nil {
			fl.err = err
		}
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.val, fl.err
}

// Scrub re-reads and re-verifies every record indexed in the disk log,
// dropping corrupt ones from the index (each becomes a future miss and
// is re-written by the next Put). It returns how many records were
// checked and how many were found corrupt; the background scrubber
// wires this in as a scrub target. Safe to call concurrently with
// serving traffic — it holds the cache lock like any other operation.
func (c *Cache) Scrub() (checked, corrupt int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log == nil {
		return 0, 0
	}
	for key, off := range c.offsets {
		checked++
		if _, err := c.readAt(off, key); err != nil {
			corrupt++
			c.stats.CorruptRecords++
			delete(c.offsets, key)
		}
	}
	return checked, corrupt
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.DiskEntries = len(c.offsets)
	return s
}

// Key derives a content-addressed key: the hex SHA-256 of the
// length-prefixed parts under a namespace. Namespaces keep the key
// spaces of different request kinds ("llm", "crawl") disjoint even
// when their payloads collide.
func Key(namespace string, parts ...string) string {
	h := sha256.New()
	writePart(h, namespace)
	for _, p := range parts {
		writePart(h, p)
	}
	return namespace + ":" + hex.EncodeToString(h.Sum(nil))
}

func writePart(h io.Writer, s string) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}
