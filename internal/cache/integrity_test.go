package cache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/nu-aqualab/borges/internal/faultinject"
	"github.com/nu-aqualab/borges/internal/vfs"
)

// flipValueByte corrupts one byte inside the base64 value region of
// the log line holding key — the framing and key stay intact, so only
// the per-record content hash can catch the damage.
func flipValueByte(t *testing.T, path, key string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	found := false
	for _, line := range bytes.Split(data, []byte("\n")) {
		if bytes.Contains(line, []byte(`"k":"`+key+`"`)) {
			i := bytes.Index(line, []byte(`"v":"`))
			if i < 0 {
				t.Fatalf("no value field in line for %s", key)
			}
			pos := i + len(`"v":"`)
			// Swap one base64 character for a different one: the line
			// stays valid JSON and valid base64, but decodes to
			// different bytes than the recorded hash covers.
			if line[pos] == 'A' {
				line[pos] = 'B'
			} else {
				line[pos] = 'A'
			}
			found = true
		}
		out = append(out, line)
	}
	if !found {
		t.Fatalf("no log line for key %s", key)
	}
	if err := os.WriteFile(path, bytes.Join(out, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptRecordIsMissAndHeals: flipping one byte inside a record's
// value turns that lookup into a counted miss — the other records are
// untouched — and the next Put writes a fresh intact line.
func TestCorruptRecordIsMissAndHeals(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir, MaxEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("payload-"), 64)
	if err := c.Put("victim", big); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("bystander", []byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	flipValueByte(t, filepath.Join(dir, "entries.jsonl"), "victim")

	// Reopen with a tiny memory tier so both keys must come from disk.
	c, err = New(Options{Dir: dir, MaxEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.Get("victim"); ok {
		t.Fatal("corrupt record served as a hit")
	}
	if got, ok := c.Get("bystander"); !ok || string(got) != "intact" {
		t.Fatalf("bystander record damaged by victim's corruption: %q, %v", got, ok)
	}
	st := c.Stats()
	if st.CorruptRecords != 1 {
		t.Fatalf("CorruptRecords = %d, want 1", st.CorruptRecords)
	}
	if st.DiskEntries != 1 {
		t.Fatalf("DiskEntries = %d, want 1 (victim dropped from index)", st.DiskEntries)
	}
	// A second lookup is a plain miss, not a second corruption count.
	if _, ok := c.Get("victim"); ok {
		t.Fatal("dropped record reappeared")
	}
	if st := c.Stats(); st.CorruptRecords != 1 {
		t.Fatalf("CorruptRecords after second miss = %d, want 1", st.CorruptRecords)
	}

	// The next Put re-appends; a fresh process sees the healed record.
	if err := c.Put("victim", big); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c, err = New(Options{Dir: dir, MaxEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got, ok := c.Get("victim"); !ok || !bytes.Equal(got, big) {
		t.Fatal("healed record not readable after reopen")
	}
}

// TestCacheScrub: a scrub pass finds the corrupt record exactly once
// and drops it; the next pass over the same log is clean.
func TestCacheScrub(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if err := c.Put(k, bytes.Repeat([]byte(k), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	flipValueByte(t, filepath.Join(dir, "entries.jsonl"), "b")

	c, err = New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	checked, corrupt := c.Scrub()
	if checked != 3 || corrupt != 1 {
		t.Fatalf("Scrub = (%d checked, %d corrupt), want (3, 1)", checked, corrupt)
	}
	if checked, corrupt = c.Scrub(); checked != 2 || corrupt != 0 {
		t.Fatalf("second Scrub = (%d, %d), want (2, 0) — exactly-once", checked, corrupt)
	}
	if st := c.Stats(); st.CorruptRecords != 1 || st.DiskEntries != 2 {
		t.Fatalf("stats = %+v, want 1 corrupt record and 2 disk entries", st)
	}
}

// TestCacheFaultFS: the disk tier runs against the injected fault
// filesystem; a forced short write on the log surfaces as a Put error
// instead of silently truncated durable state.
func TestCacheFaultFS(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFS(vfs.OS, dir, faultinject.FSConfig{
		Seed:  7,
		Force: map[string]faultinject.FSKind{"entries.jsonl": faultinject.FSKindShortWrite},
	})
	c, err := New(Options{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", bytes.Repeat([]byte("x"), 4096)); err == nil {
		t.Fatal("short write on the log must surface as a Put error")
	}
	if ffs.Stats().Injected == 0 {
		t.Fatal("fault filesystem injected nothing")
	}
	// The memory tier still serves the value.
	if got, ok := c.Get("k"); !ok || len(got) != 4096 {
		t.Fatalf("memory tier lost the value: %v", ok)
	}
}
