package cache

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/nu-aqualab/borges/internal/llm"
)

func TestGetPutRoundTrip(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache should miss")
	}
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k")
	if !ok || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New(Options{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Get("a") // refresh a; b is now the LRU victim
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestSingleflight launches many goroutines missing on one key and
// requires exactly one underlying fill.
func TestSingleflight(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	start := make(chan struct{})
	release := make(chan struct{})
	fill := func(ctx context.Context) ([]byte, error) {
		calls.Add(1)
		<-release // hold the flight open so followers must piggyback
		return []byte("shared"), nil
	}
	const workers = 16
	var wg sync.WaitGroup
	results := make([][]byte, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, err := c.GetOrFill(context.Background(), "hot", fill)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(start)
	// Let the leader enter the fill, then release it. A short busy
	// wait on the calls counter avoids a timing-dependent sleep.
	for calls.Load() == 0 {
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("underlying fills = %d, want 1", calls.Load())
	}
	for i, v := range results {
		if string(v) != "shared" {
			t.Errorf("worker %d got %q", i, v)
		}
	}
	if st := c.Stats(); st.Dedups == 0 {
		t.Errorf("expected dedups > 0, stats = %+v", st)
	}
}

func TestGetOrFillErrorNotCached(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("backend down")
	if _, err := c.GetOrFill(context.Background(), "k", func(context.Context) ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, err := c.GetOrFill(context.Background(), "k", func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || string(v) != "ok" {
		t.Fatalf("recovery fill: %q, %v", v, err)
	}
}

// TestDiskTierSurvivesRestart writes through one Cache instance and
// reads through a second instance opened on the same directory — the
// cross-process warm-start path.
func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("llm:abc", []byte(`{"Content":"Orange"}`)); err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("crawl:def", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	v, ok := c2.Get("llm:abc")
	if !ok || string(v) != `{"Content":"Orange"}` {
		t.Fatalf("disk round-trip: %q, %v", v, ok)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.DiskEntries != 2 {
		t.Errorf("stats = %+v", st)
	}
	// A second Get is served from memory (promoted on the disk hit).
	if _, ok := c2.Get("llm:abc"); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Errorf("second read should not touch disk: %+v", st)
	}
}

// TestDiskTierToleratesTornTail simulates a crash mid-append: the torn
// trailing line is discarded on reopen and the log stays usable.
func TestDiskTierToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1.Put("k1", []byte("v1"))
	// Simulate the torn write directly on the log handle.
	if _, err := c1.log.WriteAt([]byte(`{"k":"k2","v":"InRv`), c1.logSize); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if v, ok := c2.Get("k1"); !ok || string(v) != "v1" {
		t.Fatalf("intact entry lost: %q, %v", v, ok)
	}
	if err := c2.Put("k3", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	c3, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if v, ok := c3.Get("k3"); !ok || string(v) != "v3" {
		t.Fatalf("post-recovery append lost: %q, %v", v, ok)
	}
}

func TestKeyNamespacesAndSensitivity(t *testing.T) {
	if Key("llm", "a", "b") == Key("llm", "ab") {
		t.Error("length-prefixing must separate part boundaries")
	}
	if Key("llm", "x") == Key("crawl", "x") {
		t.Error("namespaces must not collide")
	}
	if Key("llm", "x") != Key("llm", "x") {
		t.Error("keys must be deterministic")
	}
}

// countingProvider echoes requests and counts backend calls.
type countingProvider struct {
	calls atomic.Int64
	fail  atomic.Bool
}

func (p *countingProvider) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	p.calls.Add(1)
	if p.fail.Load() {
		return llm.Response{}, errors.New("backend down")
	}
	content := ""
	if len(req.Messages) > 0 {
		content = req.Messages[len(req.Messages)-1].Content
	}
	return llm.Response{Content: "re: " + content, Model: req.Model}, nil
}

func TestProviderMemoizes(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	inner := &countingProvider{}
	p := &Provider{Inner: inner, Cache: c}
	req := llm.Request{Model: "m", Messages: []llm.Message{{Role: llm.RoleUser, Content: "hello"}}}
	ctx := context.Background()
	r1, err := p.Complete(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Complete(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("cached response differs: %+v vs %+v", r1, r2)
	}
	if inner.calls.Load() != 1 {
		t.Errorf("backend calls = %d, want 1", inner.calls.Load())
	}
	// A different prompt misses.
	req2 := req
	req2.Messages = []llm.Message{{Role: llm.RoleUser, Content: "other"}}
	if _, err := p.Complete(ctx, req2); err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != 2 {
		t.Errorf("backend calls = %d, want 2", inner.calls.Load())
	}
}

func TestProviderDiskWarmStart(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	inner := &countingProvider{}
	req := llm.Request{Model: "m", Messages: []llm.Message{{Role: llm.RoleUser, Content: "q"}}}
	if _, err := (&Provider{Inner: inner, Cache: c1}).Complete(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	inner2 := &countingProvider{}
	resp, err := (&Provider{Inner: inner2, Cache: c2}).Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if inner2.calls.Load() != 0 {
		t.Errorf("warm start hit the backend %d times", inner2.calls.Load())
	}
	if resp.Content != "re: q" {
		t.Errorf("warm response = %+v", resp)
	}
}

func TestProviderErrorsPropagate(t *testing.T) {
	c, _ := New(Options{})
	inner := &countingProvider{}
	inner.fail.Store(true)
	p := &Provider{Inner: inner, Cache: c}
	req := llm.Request{Model: "m", Messages: []llm.Message{{Role: llm.RoleUser, Content: "x"}}}
	if _, err := p.Complete(context.Background(), req); err == nil {
		t.Fatal("want error")
	}
	inner.fail.Store(false)
	if _, err := p.Complete(context.Background(), req); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if inner.calls.Load() != 2 {
		t.Errorf("calls = %d, want 2 (errors must not be cached)", inner.calls.Load())
	}
}

// TestConcurrentMixedUse hammers one cache from many goroutines across
// overlapping keys with the race detector in mind.
func TestConcurrentMixedUse(t *testing.T) {
	c, err := New(Options{MaxEntries: 8, Dir: filepath.Join(t.TempDir(), "d")})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%12)
			if i%3 == 0 {
				c.Put(key, []byte(key))
				return
			}
			v, err := c.GetOrFill(context.Background(), key, func(context.Context) ([]byte, error) {
				return []byte(key), nil
			})
			if err != nil || string(v) != key {
				t.Errorf("GetOrFill(%s) = %q, %v", key, v, err)
			}
		}(i)
	}
	wg.Wait()
}
