package cache

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/nu-aqualab/borges/internal/llm"
)

// Provider is an llm.Provider middleware over a Cache: completions are
// keyed by llm.RequestKey (model + sampling parameters + messages +
// image bytes) and served from the cache when present. Unlike
// llm.Caching's per-process map, a Provider shares its Cache — and
// therefore its singleflight dedup and optional disk tier — with the
// crawl stage and with every other pipeline run on the same Cache:
// both the NER extractor and the favicon classifier route through one
// instance, and a warm cache answers a full re-run without a single
// backend call.
type Provider struct {
	// Inner is the wrapped provider (required).
	Inner llm.Provider
	// Cache stores serialized responses (required).
	Cache *Cache
}

// Complete implements llm.Provider. Concurrent identical requests are
// collapsed to one backend call; errors are propagated and never
// cached.
func (p *Provider) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	fp, err := llm.RequestKey(req)
	if err != nil {
		return llm.Response{}, err
	}
	raw, err := p.Cache.GetOrFill(ctx, "llm:"+fp, func(ctx context.Context) ([]byte, error) {
		resp, err := p.Inner.Complete(ctx, req)
		if err != nil {
			return nil, err
		}
		return json.Marshal(resp)
	})
	if err != nil {
		return llm.Response{}, err
	}
	var resp llm.Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return llm.Response{}, fmt.Errorf("cache: decode cached completion: %w", err)
	}
	return resp, nil
}
