// Package ner implements Borges's learning-based Named-Entity
// Recognition module (§4.2): extraction of sibling ASNs from the
// unstructured PeeringDB "notes" and "aka" fields with few-shot LLM
// prompting.
//
// The module has three stages, mirroring the paper:
//
//  1. Input filter: only entries whose notes or aka contain numbers are
//     sent to the model — entries without numbers cannot carry ASNs.
//  2. Information extraction: the prompt of Listing 2 instructs the
//     model to report only sibling ASNs, ignoring upstreams, peers, BGP
//     communities, and other numeric noise (phone numbers, years,
//     prefix limits).
//  3. Output filter: to prevent hallucinations, only number sequences
//     that literally appear in the notes or aka text are kept.
package ner

import (
	"context"
	"encoding/json"
	"fmt"
	"regexp"
	"strings"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/peeringdb"
)

// DefaultModel is the model the paper used.
const DefaultModel = "gpt-4o-mini"

// Record is one PeeringDB entry to extract from.
type Record struct {
	ASN   asnum.ASN
	Notes string
	Aka   string
}

// Extraction is the structured result for one record.
type Extraction struct {
	Record Record
	// Siblings are the ASNs the model attributed to the same
	// organization, after the output filter.
	Siblings []asnum.ASN
	// Reason is the model's explanation (kept for auditability).
	Reason string
	// Filtered reports sibling candidates dropped by the output filter
	// (hallucinated numbers not present in the text).
	Filtered []asnum.ASN
	// Skipped is true when the input filter dropped the record without
	// querying the model.
	Skipped bool
	// Err records a model or parse failure for this record.
	Err error
}

// hasDigit reports whether s contains any decimal digit.
func hasDigit(s string) bool {
	for _, r := range s {
		if r >= '0' && r <= '9' {
			return true
		}
	}
	return false
}

// InputFilter implements the dropout filter: true when the record's text
// fields contain numeric information and should reach the model.
func InputFilter(r Record) bool { return hasDigit(r.Notes) || hasDigit(r.Aka) }

// promptTemplate is Listing 2 of the paper, verbatim up to Go formatting.
const promptTemplate = `You are a network topology expert who wants to find Autonomous Systems(ASs) that belongs to the same organization by reading the peeringdb information.

Please inform the ASs that are peering with the original AS.
Don't inform the AS that the original AS is connected to, inform the one that are peering as the same organization.
If some AS number is mentioned in the 'as-in' and 'as-out' sections in the Notes field, it doesn't mean that they belong to the same organization.

The PeeringDB information for the ASN %s is:

Notes: %s

AKA: %s

%s

Just inform an AS if it is number is explicitly written in the AKA or Notes fields provided.
Yo don't know the relation between a company name and its AS number.
Also explain why you choose the ASs informed.
`

// FormatInstructions is the {format_instructions} block: it requests a
// JSON object so the response parses deterministically.
const FormatInstructions = `Respond with a single JSON object of the form {"siblings": ["AS<number>", ...], "reason": "<short explanation>"} and nothing else. Use an empty list when no sibling ASNs are reported.`

// BuildPrompt renders the Listing 2 prompt for one record.
func BuildPrompt(r Record) string {
	return fmt.Sprintf(promptTemplate, r.ASN.String(), r.Notes, r.Aka, FormatInstructions)
}

// jsonObjectRe locates the first JSON object in a model response; models
// occasionally wrap JSON in code fences or prose despite instructions.
var jsonObjectRe = regexp.MustCompile(`(?s)\{.*\}`)

// ParseResponse extracts the sibling list and reason from a model
// response to a BuildPrompt query.
func ParseResponse(content string) ([]asnum.ASN, string, error) {
	blob := jsonObjectRe.FindString(content)
	if blob == "" {
		return nil, "", fmt.Errorf("ner: no JSON object in model response %q", truncate(content, 80))
	}
	var payload struct {
		Siblings []string `json:"siblings"`
		Reason   string   `json:"reason"`
	}
	if err := json.Unmarshal([]byte(blob), &payload); err != nil {
		return nil, "", fmt.Errorf("ner: decode model response: %w", err)
	}
	var out []asnum.ASN
	for _, s := range payload.Siblings {
		a, err := asnum.Parse(s)
		if err != nil {
			// Tolerate junk entries; they are dropped rather than
			// failing the record, matching the output filter's spirit.
			continue
		}
		out = append(out, a)
	}
	return asnum.Dedup(out), payload.Reason, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// numberRe matches the number sequences the output filter validates
// against: any run of digits in the source text.
var numberRe = regexp.MustCompile(`\d+`)

// OutputFilter drops extracted ASNs whose digit sequence does not appear
// verbatim in the record's notes or aka — the anti-hallucination guard of
// §4.2. It also drops the record's own ASN (a network is not its own
// sibling) and IANA-reserved ASNs. It returns kept and dropped lists.
func OutputFilter(r Record, candidates []asnum.ASN) (kept, dropped []asnum.ASN) {
	present := make(map[string]bool)
	for _, m := range numberRe.FindAllString(r.Notes, -1) {
		present[strings.TrimLeft(m, "0")] = true
		present[m] = true
	}
	for _, m := range numberRe.FindAllString(r.Aka, -1) {
		present[strings.TrimLeft(m, "0")] = true
		present[m] = true
	}
	for _, a := range candidates {
		digits := fmt.Sprintf("%d", uint32(a))
		switch {
		case a == r.ASN:
			// Own ASN: silently ignored, not a hallucination.
		case a.IsReserved() || !present[digits]:
			dropped = append(dropped, a)
		default:
			kept = append(kept, a)
		}
	}
	return kept, dropped
}

// Extractor runs the three-stage pipeline against a Provider.
type Extractor struct {
	// Provider generates completions; required.
	Provider llm.Provider
	// Model overrides DefaultModel when non-empty.
	Model string
	// Concurrency bounds parallel model calls (default 8).
	Concurrency int
	// DisableInputFilter bypasses the numeric dropout filter
	// (ablation: every record reaches the model).
	DisableInputFilter bool
	// DisableOutputFilter bypasses the anti-hallucination filter
	// (ablation).
	DisableOutputFilter bool
}

// Extract runs one record through the pipeline.
func (e *Extractor) Extract(ctx context.Context, r Record) Extraction {
	out := Extraction{Record: r}
	if !e.DisableInputFilter && !InputFilter(r) {
		out.Skipped = true
		return out
	}
	model := e.Model
	if model == "" {
		model = DefaultModel
	}
	resp, err := e.Provider.Complete(ctx, llm.Request{
		Model:       model,
		Temperature: 0,
		TopP:        1,
		Messages: []llm.Message{
			{Role: llm.RoleUser, Content: BuildPrompt(r)},
		},
	})
	if err != nil {
		out.Err = fmt.Errorf("ner: %v: %w", r.ASN, err)
		return out
	}
	siblings, reason, err := ParseResponse(resp.Content)
	if err != nil {
		out.Err = fmt.Errorf("ner: %v: %w", r.ASN, err)
		return out
	}
	out.Reason = reason
	if e.DisableOutputFilter {
		out.Siblings = siblings
		return out
	}
	out.Siblings, out.Filtered = OutputFilter(r, siblings)
	return out
}

// ExtractAll runs every record with bounded concurrency, preserving
// input order in the result slice. When ctx is cancelled mid-batch,
// records still waiting for a worker slot are marked with ctx.Err()
// instead of issuing further model calls, so a failing sibling
// pipeline stage stops the LLM fan-out promptly.
func (e *Extractor) ExtractAll(ctx context.Context, records []Record) []Extraction {
	conc := e.Concurrency
	if conc <= 0 {
		conc = 8
	}
	results := make([]Extraction, len(records))
	sem := make(chan struct{}, conc)
	done := make(chan int)
	for i, r := range records {
		go func(i int, r Record) {
			select {
			case sem <- struct{}{}:
				results[i] = e.Extract(ctx, r)
				<-sem
			case <-ctx.Done():
				results[i] = Extraction{Record: r, Err: ctx.Err()}
			}
			done <- i
		}(i, r)
	}
	for range records {
		<-done
	}
	return results
}

// RecordsFromPDB converts PeeringDB nets with text fields into NER
// records, in ASN order.
func RecordsFromPDB(s *peeringdb.Snapshot) []Record {
	nets := s.NetsWithText()
	out := make([]Record, 0, len(nets))
	for _, n := range nets {
		out = append(out, Record{ASN: n.ASN, Notes: n.Notes, Aka: n.Aka})
	}
	return out
}

// SiblingSets converts extractions into sibling sets (the N&A feature):
// each record with at least one extracted sibling yields the set
// {record ASN} ∪ siblings.
func SiblingSets(extractions []Extraction) []cluster.SiblingSet {
	var out []cluster.SiblingSet
	for _, ex := range extractions {
		if len(ex.Siblings) == 0 {
			continue
		}
		asns := append([]asnum.ASN{ex.Record.ASN}, ex.Siblings...)
		out = append(out, cluster.SiblingSet{
			ASNs:     asnum.Dedup(asns),
			Source:   cluster.FeatureNotesAka,
			Evidence: ex.Record.ASN.String() + " notes/aka",
		})
	}
	return out
}
