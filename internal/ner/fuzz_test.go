package ner

import (
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// FuzzParseResponse: arbitrary model output must parse or fail cleanly,
// and parsed siblings are always valid, deduplicated ASNs.
func FuzzParseResponse(f *testing.F) {
	f.Add(`{"siblings": ["AS1", "AS2"], "reason": "x"}`)
	f.Add("```json\n{\"siblings\": [], \"reason\": \"\"}\n```")
	f.Add(`{"siblings": ["junk", "AS99999999999"], "reason": 5}`)
	f.Add(`no json here`)
	f.Add(`{"siblings": "not-a-list"}`)
	f.Add(`{{{{`)
	f.Fuzz(func(t *testing.T, content string) {
		siblings, _, err := ParseResponse(content)
		if err != nil {
			return
		}
		for i, s := range siblings {
			if i > 0 && siblings[i-1] >= s {
				t.Fatalf("siblings not sorted/deduped: %v", siblings)
			}
			_ = s
		}
	})
}

// FuzzOutputFilter: the filter never panics and never passes an ASN
// whose digits are absent from the record text.
func FuzzOutputFilter(f *testing.F) {
	f.Add("notes with AS123", "aka 456", uint32(123))
	f.Add("", "", uint32(0))
	f.Add("0456 padded", "", uint32(456))
	f.Fuzz(func(t *testing.T, notes, aka string, candidate uint32) {
		r := Record{ASN: 1, Notes: notes, Aka: aka}
		kept, _ := OutputFilter(r, []asnum.ASN{asnum.ASN(candidate)})
		for _, k := range kept {
			if k.IsReserved() {
				t.Fatalf("reserved ASN %v passed the filter", k)
			}
		}
	})
}
