package ner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/llm"
	"github.com/nu-aqualab/borges/internal/peeringdb"
)

// canned is a test provider replying with fixed content.
type canned struct {
	content string
	err     error
	calls   int
	prompts []string
}

func (c *canned) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	c.calls++
	c.prompts = append(c.prompts, req.Messages[len(req.Messages)-1].Content)
	if c.err != nil {
		return llm.Response{}, c.err
	}
	return llm.Response{Content: c.content}, nil
}

func TestInputFilter(t *testing.T) {
	cases := []struct {
		r    Record
		want bool
	}{
		{Record{Notes: "no numbers here"}, false},
		{Record{Notes: "sibling AS3356"}, true},
		{Record{Aka: "Level 3"}, true},
		{Record{}, false},
		{Record{Notes: "", Aka: ""}, false},
	}
	for _, c := range cases {
		if got := InputFilter(c.r); got != c.want {
			t.Errorf("InputFilter(%+v) = %v", c.r, got)
		}
	}
}

func TestBuildPromptFaithfulToListing2(t *testing.T) {
	p := BuildPrompt(Record{ASN: 3320, Notes: "some notes", Aka: "DTAG"})
	for _, want := range []string{
		"network topology expert",
		"as-in' and 'as-out'",
		"The PeeringDB information for the ASN AS3320 is:",
		"Notes: some notes",
		"AKA: DTAG",
		"explicitly written in the AKA or Notes fields",
		"Also explain why you choose the ASs informed.",
		FormatInstructions,
	} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
}

func TestParseResponse(t *testing.T) {
	sib, reason, err := ParseResponse(`{"siblings": ["AS123", "AS456"], "reason": "listed as subsidiaries"}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sib) != 2 || sib[0] != 123 || sib[1] != 456 {
		t.Errorf("siblings = %v", sib)
	}
	if reason != "listed as subsidiaries" {
		t.Errorf("reason = %q", reason)
	}
	// Wrapped in prose / code fences.
	sib, _, err = ParseResponse("Sure! Here is the JSON:\n```json\n{\"siblings\": [\"AS7\"], \"reason\": \"x\"}\n```")
	if err != nil || len(sib) != 1 || sib[0] != 7 {
		t.Errorf("fenced parse: %v %v", sib, err)
	}
	// Junk sibling entries are tolerated and dropped.
	sib, _, err = ParseResponse(`{"siblings": ["AS9", "not-an-asn", ""], "reason": ""}`)
	if err != nil || len(sib) != 1 {
		t.Errorf("junk entries: %v %v", sib, err)
	}
	// Duplicates collapse.
	sib, _, _ = ParseResponse(`{"siblings": ["AS9", "9", "AS9"], "reason": ""}`)
	if len(sib) != 1 {
		t.Errorf("duplicates: %v", sib)
	}
	// No JSON at all.
	if _, _, err = ParseResponse("I cannot help with that."); err == nil {
		t.Error("want error for JSON-less response")
	}
	// Malformed JSON.
	if _, _, err = ParseResponse(`{"siblings": [}`); err == nil {
		t.Error("want error for malformed JSON")
	}
}

func TestOutputFilter(t *testing.T) {
	r := Record{ASN: 100, Notes: "we operate AS200 and AS300", Aka: "also 0400"}
	kept, dropped := OutputFilter(r, []asnum.ASN{200, 300, 400, 999, 100, 64512})
	wantKept := []asnum.ASN{200, 300, 400} // 400 appears as "0400"
	if len(kept) != len(wantKept) {
		t.Fatalf("kept = %v", kept)
	}
	for i := range wantKept {
		if kept[i] != wantKept[i] {
			t.Fatalf("kept = %v, want %v", kept, wantKept)
		}
	}
	// 999 hallucinated, 64512 reserved; own ASN 100 silently ignored.
	if len(dropped) != 2 {
		t.Errorf("dropped = %v", dropped)
	}
}

func TestExtractSkipsNonNumeric(t *testing.T) {
	p := &canned{content: `{"siblings": [], "reason": ""}`}
	e := &Extractor{Provider: p}
	out := e.Extract(context.Background(), Record{ASN: 1, Notes: "nothing numeric"})
	if !out.Skipped || p.calls != 0 {
		t.Errorf("out=%+v calls=%d", out, p.calls)
	}
	// Ablation: disabled input filter queries the model anyway.
	e2 := &Extractor{Provider: p, DisableInputFilter: true}
	out = e2.Extract(context.Background(), Record{ASN: 1, Notes: "nothing numeric"})
	if out.Skipped || p.calls != 1 {
		t.Errorf("ablation: out=%+v calls=%d", out, p.calls)
	}
}

func TestExtractAppliesOutputFilter(t *testing.T) {
	// Model hallucinates AS777 not present in the text.
	p := &canned{content: `{"siblings": ["AS200", "AS777"], "reason": "made up"}`}
	e := &Extractor{Provider: p}
	out := e.Extract(context.Background(), Record{ASN: 1, Notes: "sibling AS200"})
	if len(out.Siblings) != 1 || out.Siblings[0] != 200 {
		t.Errorf("siblings = %v", out.Siblings)
	}
	if len(out.Filtered) != 1 || out.Filtered[0] != 777 {
		t.Errorf("filtered = %v", out.Filtered)
	}
	// Ablation: without the output filter the hallucination survives.
	e2 := &Extractor{Provider: p, DisableOutputFilter: true}
	out = e2.Extract(context.Background(), Record{ASN: 1, Notes: "sibling AS200"})
	if len(out.Siblings) != 2 {
		t.Errorf("ablation siblings = %v", out.Siblings)
	}
}

func TestExtractErrorPaths(t *testing.T) {
	e := &Extractor{Provider: &canned{err: errors.New("boom")}}
	out := e.Extract(context.Background(), Record{ASN: 1, Notes: "AS2"})
	if out.Err == nil {
		t.Error("provider error should surface")
	}
	e = &Extractor{Provider: &canned{content: "no json here"}}
	out = e.Extract(context.Background(), Record{ASN: 1, Notes: "AS2"})
	if out.Err == nil {
		t.Error("parse error should surface")
	}
}

func TestExtractAllOrder(t *testing.T) {
	p := &canned{content: `{"siblings": [], "reason": ""}`}
	e := &Extractor{Provider: p, Concurrency: 4}
	var records []Record
	for i := 0; i < 50; i++ {
		records = append(records, Record{ASN: asnum.ASN(i + 1), Notes: fmt.Sprintf("entry %d", i)})
	}
	results := e.ExtractAll(context.Background(), records)
	if len(results) != 50 {
		t.Fatalf("got %d results", len(results))
	}
	for i := range results {
		if results[i].Record.ASN != asnum.ASN(i+1) {
			t.Fatalf("result %d out of order: %v", i, results[i].Record.ASN)
		}
	}
}

func TestRecordsFromPDB(t *testing.T) {
	s := peeringdb.NewSnapshot("x")
	s.AddNet(peeringdb.Net{ID: 1, OrgID: 1, ASN: 10, Notes: "text"})
	s.AddNet(peeringdb.Net{ID: 2, OrgID: 1, ASN: 5, Aka: "alias"})
	s.AddNet(peeringdb.Net{ID: 3, OrgID: 1, ASN: 7}) // no text
	records := RecordsFromPDB(s)
	if len(records) != 2 || records[0].ASN != 5 || records[1].ASN != 10 {
		t.Errorf("records = %v", records)
	}
}

func TestSiblingSets(t *testing.T) {
	extractions := []Extraction{
		{Record: Record{ASN: 1}, Siblings: []asnum.ASN{2, 3}},
		{Record: Record{ASN: 9}}, // empty → no set
		{Record: Record{ASN: 4}, Siblings: []asnum.ASN{4, 5}},
	}
	sets := SiblingSets(extractions)
	if len(sets) != 2 {
		t.Fatalf("sets = %v", sets)
	}
	if len(sets[0].ASNs) != 3 || sets[0].Source != cluster.FeatureNotesAka {
		t.Errorf("set 0 = %+v", sets[0])
	}
	if len(sets[1].ASNs) != 2 { // dedup of record ASN
		t.Errorf("set 1 = %+v", sets[1])
	}
}
