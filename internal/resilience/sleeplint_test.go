package resilience

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoNakedTimeSleep is a structcheck-style lint: production code
// must not hand-roll waits with time.Sleep — blocking sleeps ignore
// context cancellation, which is how retries leak goroutines and runs
// refuse to die. Every wait belongs on resilience.Sleep (ctx-aware) or
// a Policy. The lint walks every non-test .go file in the module
// outside internal/resilience and fails on any time.Sleep call.
func TestNoNakedTimeSleep(t *testing.T) {
	root := moduleRoot(t)
	var offenders []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			if rel, _ := filepath.Rel(root, path); rel == filepath.Join("internal", "resilience") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Sleep" {
				return true
			}
			if ident, ok := sel.X.(*ast.Ident); ok && ident.Name == "time" {
				pos := fset.Position(call.Pos())
				rel, _ := filepath.Rel(root, pos.Filename)
				offenders = append(offenders, fmt.Sprintf("%s:%d", rel, pos.Line))
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) > 0 {
		t.Errorf("naked time.Sleep outside internal/resilience (use resilience.Sleep or a Policy):\n  %s",
			strings.Join(offenders, "\n  "))
	}
}

// moduleRoot walks up from the package directory to the directory
// containing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above package directory")
		}
		dir = parent
	}
}
