// Package resilience is Borges's reusable fault-tolerance layer: a
// unified retry policy (bounded attempts, jittered exponential backoff,
// Retry-After awareness, and an optional shared retry budget), per-key
// circuit breakers (closed → open → half-open with probe admission),
// and the transient-error taxonomy the pipeline uses to decide what may
// be retried, what must never be cached, and what belongs in a run's
// quarantine report.
//
// The package is deliberately dependency-free (stdlib only): the
// crawler wraps its per-host HTTP fetches in an Executor, the LLM layer
// wraps providers per model, and core.Run aggregates both executors'
// counters into the machine-readable RunReport. One policy type
// replaces the previous ad-hoc retry loops, so backoff math, budget
// accounting, and breaker behaviour are identical across every
// backend.
package resilience

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"syscall"
	"time"
)

// ErrOpen is the sentinel wrapped by BreakerOpenError; callers test for
// it with errors.Is.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerOpenError reports that an operation was denied without being
// attempted because its circuit breaker is open.
type BreakerOpenError struct {
	// Key identifies the breaker (e.g. "crawl:example.com").
	Key string
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("resilience: circuit open for %s", e.Key)
}

// Unwrap makes errors.Is(err, ErrOpen) work.
func (e *BreakerOpenError) Unwrap() error { return ErrOpen }

// ExhaustedError reports that an operation kept failing transiently
// until its retry budget ran out. It wraps the last attempt's error.
type ExhaustedError struct {
	// Attempts is how many times the operation ran.
	Attempts int
	// BudgetSpent is true when the shared Budget, not the per-call
	// attempt bound, ended the retries.
	BudgetSpent bool
	// Err is the final attempt's error.
	Err error
}

func (e *ExhaustedError) Error() string {
	if e.BudgetSpent {
		return fmt.Sprintf("resilience: retry budget exhausted after %d attempts: %v", e.Attempts, e.Err)
	}
	return fmt.Sprintf("resilience: giving up after %d attempts: %v", e.Attempts, e.Err)
}

func (e *ExhaustedError) Unwrap() error { return e.Err }

// StatusError is a retryable HTTP status (429 or 5xx) observed by a
// transport-level operation, optionally carrying the server's
// Retry-After hint. It is transient by definition: the server answered,
// but with a condition that says nothing durable about the resource.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// RetryAfter is the parsed Retry-After hint (0 = none).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("resilience: status %d (%s)", e.Code, http.StatusText(e.Code))
}

// Transient marks StatusError for IsTransient.
func (e *StatusError) Transient() bool { return true }

// RetryAfterHint implements the delay-hint interface honored by Policy
// and llm.Retrying.
func (e *StatusError) RetryAfterHint() (time.Duration, bool) {
	return e.RetryAfter, e.RetryAfter > 0
}

// RetryAfterError attaches a server-provided retry delay to an error —
// the typed form of an HTTP Retry-After header. Retry layers prefer
// the hint over their own exponential backoff.
type RetryAfterError struct {
	// Err is the underlying failure.
	Err error
	// After is the server-requested wait.
	After time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.After)
}

func (e *RetryAfterError) Unwrap() error { return e.Err }

// RetryAfterHint implements the delay-hint interface.
func (e *RetryAfterError) RetryAfterHint() (time.Duration, bool) {
	return e.After, e.After > 0
}

// delayHinter is the interface a typed error implements to carry a
// server-provided retry delay.
type delayHinter interface {
	RetryAfterHint() (time.Duration, bool)
}

// RetryAfterOf extracts the innermost Retry-After hint from an error
// chain, or (0, false).
func RetryAfterOf(err error) (time.Duration, bool) {
	var h delayHinter
	if errors.As(err, &h) {
		return h.RetryAfterHint()
	}
	return 0, false
}

// ParseRetryAfter parses an HTTP Retry-After header value — either
// delay-seconds or an HTTP-date — relative to now. It returns 0 for
// empty, malformed, or already-elapsed values.
func ParseRetryAfter(value string, now time.Time) time.Duration {
	if value == "" {
		return 0
	}
	var secs int
	if _, err := fmt.Sscanf(value, "%d", &secs); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(value); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// transientError is the marker wrapper applied by MarkTransient.
type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// MarkTransient wraps err so IsTransient reports true — the
// fault-injection harness and transports use it to tag failures that
// reflect infrastructure conditions rather than properties of the
// target. MarkTransient(nil) is nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient classifies an error as a transport-level fault: a
// condition that may clear on retry and that says nothing durable about
// the resource. Transient outcomes are retried (when a policy allows),
// never cached, and reported as quarantined. Durable failures — DNS
// misses, connection refused, HTTP 404 — are genuine observations and
// are none of those.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var marked interface{ Transient() bool }
	if errors.As(err, &marked) && marked.Transient() {
		return true
	}
	var exhausted *ExhaustedError
	if errors.As(err, &exhausted) {
		return true
	}
	if errors.Is(err, ErrOpen) {
		return true
	}
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}
