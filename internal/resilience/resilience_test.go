package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"syscall"
	"testing"
	"time"
)

// noSleep is the test sleep: records requested delays, never waits.
func noSleep(delays *[]time.Duration) func(ctx context.Context, d time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func TestPolicyRetriesTransientUntilSuccess(t *testing.T) {
	var delays []time.Duration
	p := &Policy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, Jitter: -1, SleepFn: noSleep(&delays)}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("flap"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Errorf("backoff delays = %v, want %v", delays, want)
	}
}

func TestPolicyExhaustsIntoTypedError(t *testing.T) {
	var delays []time.Duration
	p := &Policy{MaxAttempts: 3, Jitter: -1, SleepFn: noSleep(&delays)}
	base := MarkTransient(errors.New("still down"))
	err := p.Do(context.Background(), func(ctx context.Context) error { return base })
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want ExhaustedError", err)
	}
	if ex.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", ex.Attempts)
	}
	if !IsTransient(err) {
		t.Error("an exhausted retry chain must classify as transient")
	}
	if !errors.Is(err, base) {
		t.Error("ExhaustedError must wrap the final attempt's error")
	}
}

func TestPolicyDoesNotRetryDurableErrors(t *testing.T) {
	p := &Policy{MaxAttempts: 4, SleepFn: noSleep(new([]time.Duration))}
	calls := 0
	durable := errors.New("404 not found")
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return durable
	})
	if !errors.Is(err, durable) || calls != 1 {
		t.Errorf("err=%v calls=%d; durable errors must surface unretried", err, calls)
	}
}

func TestPolicyHonorsRetryAfterHint(t *testing.T) {
	var delays []time.Duration
	p := &Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, Jitter: -1, SleepFn: noSleep(&delays)}
	hinted := &RetryAfterError{Err: MarkTransient(errors.New("429")), After: 7 * time.Second}
	_ = p.Do(context.Background(), func(ctx context.Context) error { return hinted })
	if len(delays) != 1 || delays[0] != 7*time.Second {
		t.Errorf("delays = %v, want [7s] (server hint replaces exponential backoff)", delays)
	}
}

func TestPolicyCapsRetryAfterAtMaxDelay(t *testing.T) {
	var delays []time.Duration
	p := &Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Second, Jitter: -1, SleepFn: noSleep(&delays)}
	hinted := &RetryAfterError{Err: MarkTransient(errors.New("429")), After: time.Hour}
	_ = p.Do(context.Background(), func(ctx context.Context) error { return hinted })
	if len(delays) != 1 || delays[0] != time.Second {
		t.Errorf("delays = %v, want [1s] (hint capped at MaxDelay)", delays)
	}
}

func TestPolicyJitterIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var delays []time.Duration
		p := &Policy{MaxAttempts: 4, BaseDelay: time.Second, Seed: seed, SleepFn: noSleep(&delays)}
		_ = p.Do(context.Background(), func(ctx context.Context) error {
			return MarkTransient(errors.New("flap"))
		})
		return delays
	}
	a, b := run(42), run(42)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("expected 3 backoffs, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("seeded jitter diverged at %d: %v vs %v", i, a[i], b[i])
		}
		base := time.Second << i
		if a[i] > base || a[i] < time.Duration(float64(base)*0.8) {
			t.Errorf("delay %d = %v outside [0.8·%v, %v]", i, a[i], base, base)
		}
	}
}

func TestSharedBudgetBoundsRetriesAcrossCalls(t *testing.T) {
	budget := NewBudget(3)
	p := &Policy{MaxAttempts: 10, Budget: budget, Jitter: -1, SleepFn: noSleep(new([]time.Duration))}
	fail := func(ctx context.Context) error { return MarkTransient(errors.New("down")) }

	err1 := p.Do(context.Background(), fail)
	err2 := p.Do(context.Background(), fail)
	var ex *ExhaustedError
	if !errors.As(err1, &ex) {
		t.Fatalf("first call: %v, want ExhaustedError", err1)
	}
	if !ex.BudgetSpent {
		t.Error("first call should have spent the shared budget")
	}
	if !errors.As(err2, &ex) || ex.Attempts != 1 {
		t.Errorf("second call = %v; with the budget gone it gets exactly one attempt", err2)
	}
	if budget.Spent() != 3 {
		t.Errorf("budget.Spent() = %d, want 3", budget.Spent())
	}
}

func TestPolicyStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Policy{MaxAttempts: 100, SleepFn: func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}}
	err := p.Do(ctx, func(ctx context.Context) error { return MarkTransient(errors.New("flap")) })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, 10*time.Second)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker must admit")
		}
		b.Record(false)
	}
	if b.State() != StateClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	b.Allow()
	b.Record(false) // third consecutive failure trips it
	if b.State() != StateOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker must deny before cooldown")
	}

	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker must admit a probe")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker must admit only one probe at a time")
	}
	b.Record(false) // probe failed: re-open
	if b.State() != StateOpen || b.Trips() != 2 {
		t.Fatalf("state=%v trips=%d, want open/2", b.State(), b.Trips())
	}

	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe must be admitted")
	}
	b.Record(true) // probe succeeded: close
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed after successful probe", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker must admit")
	}
	b.Record(true)
}

func TestBreakerIgnoresNonCountedFailures(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	for i := 0; i < 10; i++ {
		b.Allow()
		b.Record(true) // durable outcomes (404s) report ok
	}
	if b.State() != StateClosed {
		t.Errorf("state = %v, want closed", b.State())
	}
}

func TestExecutorDeniesFastAndCountsEverything(t *testing.T) {
	now := time.Unix(0, 0)
	e := &Executor{
		Policy:   &Policy{MaxAttempts: 2, Jitter: -1, SleepFn: noSleep(new([]time.Duration))},
		Breakers: &BreakerSet{Threshold: 2, Cooldown: time.Minute, Now: func() time.Time { return now }},
	}
	fail := func(ctx context.Context) error { return MarkTransient(errors.New("down")) }

	// Two exhausted calls = 4 transient failures on one key: trips at 2.
	_ = e.Do(context.Background(), "crawl:bad.example", fail)
	err := e.Do(context.Background(), "crawl:bad.example", fail)
	if !errors.Is(err, ErrOpen) {
		// The first call trips the breaker (2 failures); the second is denied.
		t.Fatalf("second call = %v, want breaker denial", err)
	}
	var denied *BreakerOpenError
	if !errors.As(err, &denied) || denied.Key != "crawl:bad.example" {
		t.Fatalf("err = %v, want BreakerOpenError for crawl:bad.example", err)
	}
	if !IsTransient(err) {
		t.Error("breaker denials classify as transient (quarantined, not cached)")
	}

	// Other keys are unaffected.
	if err := e.Do(context.Background(), "crawl:good.example", func(ctx context.Context) error { return nil }); err != nil {
		t.Fatalf("independent key: %v", err)
	}

	st := e.Stats()
	if st.Attempts != 3 { // 2 on bad (exhausted), 0 denied, 1 on good
		t.Errorf("Attempts = %d, want 3", st.Attempts)
	}
	if st.Retries != 1 {
		t.Errorf("Retries = %d, want 1", st.Retries)
	}
	if st.Denials != 1 {
		t.Errorf("Denials = %d, want 1", st.Denials)
	}
	if st.BreakerTrips != 1 {
		t.Errorf("BreakerTrips = %d, want 1", st.BreakerTrips)
	}
	if open := e.Breakers.Open(); len(open) != 1 || open[0] != "crawl:bad.example" {
		t.Errorf("Open() = %v, want [crawl:bad.example]", open)
	}
}

func TestExecutorHalfOpenProbeHeals(t *testing.T) {
	now := time.Unix(0, 0)
	e := &Executor{
		Policy:   &Policy{MaxAttempts: 1, SleepFn: noSleep(new([]time.Duration))},
		Breakers: &BreakerSet{Threshold: 1, Cooldown: time.Second, Now: func() time.Time { return now }},
	}
	_ = e.Do(context.Background(), "k", func(ctx context.Context) error {
		return MarkTransient(errors.New("down"))
	})
	if err := e.Do(context.Background(), "k", func(ctx context.Context) error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("pre-cooldown call = %v, want denial", err)
	}
	now = now.Add(2 * time.Second)
	if err := e.Do(context.Background(), "k", func(ctx context.Context) error { return nil }); err != nil {
		t.Fatalf("probe = %v, want success", err)
	}
	if st := e.Breakers.Get("k").State(); st != StateClosed {
		t.Errorf("state after healed probe = %v, want closed", st)
	}
}

func TestIsTransientTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"marked", MarkTransient(errors.New("x")), true},
		{"wrapped marked", fmt.Errorf("crawl: %w", MarkTransient(errors.New("x"))), true},
		{"status 429", &StatusError{Code: 429}, true},
		{"status 503", &StatusError{Code: 503}, true},
		{"breaker", &BreakerOpenError{Key: "k"}, true},
		{"exhausted", &ExhaustedError{Attempts: 2, Err: errors.New("x")}, true},
		{"conn reset", fmt.Errorf("read: %w", syscall.ECONNRESET), true},
		{"torn body", fmt.Errorf("read body: %w", io.ErrUnexpectedEOF), true},
		{"plain", errors.New("no such host"), false},
		{"refused", fmt.Errorf("connect: %w", syscall.ECONNREFUSED), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	if d := ParseRetryAfter("17", now); d != 17*time.Second {
		t.Errorf("seconds form = %v, want 17s", d)
	}
	date := now.Add(90 * time.Second).Format(http.TimeFormat)
	if d := ParseRetryAfter(date, now); d != 90*time.Second {
		t.Errorf("date form = %v, want 90s", d)
	}
	for _, bad := range []string{"", "soon", "-5"} {
		if d := ParseRetryAfter(bad, now); d != 0 {
			t.Errorf("ParseRetryAfter(%q) = %v, want 0", bad, d)
		}
	}
	past := now.Add(-time.Minute).Format(http.TimeFormat)
	if d := ParseRetryAfter(past, now); d != 0 {
		t.Errorf("past date = %v, want 0", d)
	}
}

func TestSleepIsContextAware(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("Sleep under cancelled ctx = %v, want Canceled", err)
	}
	if err := Sleep(context.Background(), time.Microsecond); err != nil {
		t.Errorf("short sleep = %v", err)
	}
}
