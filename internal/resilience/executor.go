package resilience

import (
	"context"
	"errors"
	"sync/atomic"
)

// Executor combines a retry Policy with a per-key BreakerSet and counts
// what it spent — the one fault-tolerance entry point the crawler and
// the LLM layer share. Either part is optional: a nil Policy runs a
// single attempt, a nil Breakers never denies.
type Executor struct {
	// Policy governs retries (nil = single attempt).
	Policy *Policy
	// Breakers supplies per-key circuit breakers (nil = no breaking).
	Breakers *BreakerSet

	attempts atomic.Int64
	retries  atomic.Int64
	denials  atomic.Int64
}

// ExecStats are an Executor's cumulative counters.
type ExecStats struct {
	// Attempts counts operations started (including retries).
	Attempts int64
	// Retries counts re-attempts after a transient failure.
	Retries int64
	// Denials counts calls rejected by an open breaker without running.
	Denials int64
	// BreakerTrips counts circuit openings across all keys.
	BreakerTrips int64
}

// Stats returns the executor's counters.
func (e *Executor) Stats() ExecStats {
	s := ExecStats{
		Attempts: e.attempts.Load(),
		Retries:  e.retries.Load(),
		Denials:  e.denials.Load(),
	}
	if e.Breakers != nil {
		s.BreakerTrips = e.Breakers.Trips()
	}
	return s
}

// retryable resolves the effective classification function.
func (e *Executor) retryable(err error) bool {
	if e.Policy != nil {
		return e.Policy.retryable(err)
	}
	return IsTransient(err)
}

// Do runs op keyed by key. When the key's breaker is open the call is
// denied with a BreakerOpenError; denials are never retried — retrying
// against a tripped circuit is exactly the load the breaker exists to
// shed. Otherwise the operation runs under the retry policy; every
// attempt's outcome feeds the breaker, with only retryable failures
// counting against it (a 404 is the backend answering, not failing).
func (e *Executor) Do(ctx context.Context, key string, op func(ctx context.Context) error) error {
	var br *Breaker
	if e.Breakers != nil {
		br = e.Breakers.Get(key)
	}
	attempt := func(ctx context.Context) error {
		if br != nil && !br.Allow() {
			e.denials.Add(1)
			return &BreakerOpenError{Key: key}
		}
		e.attempts.Add(1)
		err := op(ctx)
		if br != nil {
			br.Record(err == nil || !e.retryable(err))
		}
		return err
	}
	if e.Policy == nil {
		return attempt(ctx)
	}
	retryable := func(err error) bool {
		var denied *BreakerOpenError
		if errors.As(err, &denied) {
			return false
		}
		return e.Policy.retryable(err)
	}
	return e.Policy.doWith(ctx, attempt, func() { e.retries.Add(1) }, retryable)
}
