package resilience

import (
	"sort"
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State uint8

// Breaker states.
const (
	// StateClosed admits every call (normal operation).
	StateClosed State = iota
	// StateOpen denies every call until the cooldown elapses.
	StateOpen
	// StateHalfOpen admits one probe at a time; its outcome decides
	// whether the circuit closes or re-opens.
	StateHalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is one circuit breaker: it opens after Threshold consecutive
// transient failures, denies calls for Cooldown, then admits a single
// probe whose outcome closes or re-opens the circuit. Safe for
// concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    State
	fails    int
	openedAt time.Time
	probing  bool
	trips    int64
}

// NewBreaker returns a closed breaker. threshold <= 0 defaults to 5
// consecutive failures; cooldown <= 0 defaults to 30s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a call may proceed. In the half-open state only
// one probe is admitted at a time; concurrent callers are denied until
// the probe reports its outcome via Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = StateHalfOpen
		b.probing = true
		return true
	default: // StateHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports a call's outcome. ok should be true when the call
// succeeded or failed for a reason the breaker must not count (a 404 is
// the host answering, not the host failing).
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.threshold {
			b.open()
		}
	case StateHalfOpen:
		b.probing = false
		if ok {
			b.state = StateClosed
			b.fails = 0
			return
		}
		b.open()
	default:
		// A straggler finishing after the circuit opened: ignore.
	}
}

// open transitions to StateOpen under b.mu.
func (b *Breaker) open() {
	b.state = StateOpen
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
	b.trips++
}

// State returns the breaker's current position.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// BreakerSet is a registry of per-key breakers — one per crawl host,
// one per LLM provider/model — created on first use with shared
// settings. Keys follow the cache-key convention of a namespaced
// identity ("crawl:example.com", "llm:gpt-4o-mini").
type BreakerSet struct {
	// Threshold and Cooldown configure breakers created by Get; zero
	// values select NewBreaker's defaults.
	Threshold int
	Cooldown  time.Duration
	// Now overrides the clock in tests.
	Now func() time.Time

	mu sync.Mutex
	m  map[string]*Breaker
}

// Get returns the breaker for key, creating it if needed.
func (s *BreakerSet) Get(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*Breaker)
	}
	b, ok := s.m[key]
	if !ok {
		b = NewBreaker(s.Threshold, s.Cooldown)
		if s.Now != nil {
			b.now = s.Now
		}
		s.m[key] = b
	}
	return b
}

// Trips sums trips across every breaker in the set.
func (s *BreakerSet) Trips() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, b := range s.m {
		total += b.Trips()
	}
	return total
}

// Open returns the keys whose breakers are not closed, sorted — the
// degradation report's "which backends are we avoiding right now".
func (s *BreakerSet) Open() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for key, b := range s.m {
		if b.State() != StateClosed {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}
