package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Sleep waits for d or until ctx is cancelled, whichever comes first.
// It is the context-aware replacement for time.Sleep that every wait in
// the pipeline routes through (the sleep lint enforces this).
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Budget bounds total retries across every call that shares it — a run
// under partial outage must not multiply its traffic unboundedly even
// when each individual call's attempt count looks reasonable.
type Budget struct {
	mu        sync.Mutex
	remaining int
	spent     int
}

// NewBudget returns a budget allowing n retries in total.
func NewBudget(n int) *Budget { return &Budget{remaining: n} }

// Take consumes one retry token, reporting false when the budget is
// spent.
func (b *Budget) Take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.remaining <= 0 {
		return false
	}
	b.remaining--
	b.spent++
	return true
}

// Spent returns how many retry tokens have been consumed.
func (b *Budget) Spent() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent
}

// Policy is the unified retry policy: bounded attempts, jittered
// exponential backoff capped at MaxDelay, Retry-After awareness, and an
// optional shared Budget. The zero value retries nothing (MaxAttempts
// defaults to 1), so wrapping an operation in a Policy is always safe.
type Policy struct {
	// MaxAttempts bounds total attempts per call (default 1 — no
	// retries).
	MaxAttempts int
	// BaseDelay is the first backoff (default 250ms); each retry
	// doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff, including Retry-After hints (default
	// 30s).
	MaxDelay time.Duration
	// Jitter is the fraction of each delay randomized away (default
	// 0.2): delay ∈ [d·(1−Jitter), d]. Negative disables jitter.
	Jitter float64
	// Seed makes the jitter sequence deterministic; 0 seeds from 1.
	Seed int64
	// Budget, when non-nil, bounds total retries across all calls
	// sharing this policy.
	Budget *Budget
	// Retryable classifies errors worth retrying; nil selects
	// IsTransient.
	Retryable func(error) bool
	// SleepFn is indirected for tests; defaults to Sleep.
	SleepFn func(ctx context.Context, d time.Duration) error

	rngOnce sync.Once
	rngMu   sync.Mutex
	rng     *rand.Rand
}

func (p *Policy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

func (p *Policy) retryable(err error) bool {
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return IsTransient(err)
}

// backoff computes the wait before attempt n+1 (n counts completed
// attempts, so n=1 yields BaseDelay), applying the cap, jitter, and any
// Retry-After hint carried by err.
func (p *Policy) backoff(n int, err error) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 30 * time.Second
	}
	d := base
	for i := 1; i < n && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	// A server that said how long to wait knows better than our
	// exponential guess: the hint replaces the computed backoff (still
	// capped, still jittered so synchronized clients spread out).
	if hint, ok := RetryAfterOf(err); ok {
		d = hint
		if d > maxd {
			d = maxd
		}
	}
	if j := p.jitterFraction(); j > 0 {
		p.rngOnce.Do(func() {
			seed := p.Seed
			if seed == 0 {
				seed = 1
			}
			p.rng = rand.New(rand.NewSource(seed))
		})
		p.rngMu.Lock()
		f := p.rng.Float64()
		p.rngMu.Unlock()
		d -= time.Duration(f * j * float64(d))
	}
	return d
}

// Backoff exposes the policy's backoff schedule for callers that run
// their own retry loop (a watch stream that reconnects forever cannot
// use Do's bounded attempts): the wait before attempt n+1 given n
// completed failures, with the same cap, jitter, and Retry-After
// handling Do applies.
func (p *Policy) Backoff(n int, err error) time.Duration {
	if n < 1 {
		n = 1
	}
	return p.backoff(n, err)
}

func (p *Policy) jitterFraction() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter == 0:
		return 0.2
	case p.Jitter > 1:
		return 1
	default:
		return p.Jitter
	}
}

// Do runs op under the policy: transient failures are retried with
// backoff until an attempt succeeds, a non-retryable error surfaces,
// the attempt bound or shared budget is exhausted (ExhaustedError), or
// ctx is cancelled.
func (p *Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	return p.doWith(ctx, op, nil, p.retryable)
}

// doWith is Do with an optional retry counter and a classification
// override, for Executor (which must not retry breaker denials).
func (p *Policy) doWith(ctx context.Context, op func(ctx context.Context) error, onRetry func(), retryable func(error) bool) error {
	sleep := p.SleepFn
	if sleep == nil {
		sleep = Sleep
	}
	attempts := p.attempts()
	for n := 1; ; n++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		if !retryable(err) {
			return err
		}
		if n >= attempts {
			if attempts == 1 {
				return err // no retrying configured: report the raw fault
			}
			return &ExhaustedError{Attempts: n, Err: err}
		}
		if p.Budget != nil && !p.Budget.Take() {
			return &ExhaustedError{Attempts: n, BudgetSpent: true, Err: err}
		}
		if onRetry != nil {
			onRetry()
		}
		if serr := sleep(ctx, p.backoff(n, err)); serr != nil {
			return serr
		}
	}
}
