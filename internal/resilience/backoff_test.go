package resilience

import (
	"testing"
	"time"
)

// TestPolicyBackoffExported covers the exported Backoff schedule used
// by callers running their own retry loops (the watch reconnect loop,
// the fleet follower): doubling from BaseDelay, n<1 clamped, MaxDelay
// cap, and Retry-After hints replacing the computed delay.
func TestPolicyBackoffExported(t *testing.T) {
	p := &Policy{BaseDelay: 100 * time.Millisecond, Jitter: -1}
	if got := p.Backoff(1, nil); got != 100*time.Millisecond {
		t.Fatalf("Backoff(1) = %v, want 100ms", got)
	}
	if got := p.Backoff(3, nil); got != 400*time.Millisecond {
		t.Fatalf("Backoff(3) = %v, want 400ms", got)
	}
	if got := p.Backoff(0, nil); got != 100*time.Millisecond {
		t.Fatalf("Backoff(0) = %v, want clamp to first delay", got)
	}

	capped := &Policy{BaseDelay: 10 * time.Second, MaxDelay: 15 * time.Second, Jitter: -1}
	if got := capped.Backoff(4, nil); got != 15*time.Second {
		t.Fatalf("capped Backoff(4) = %v, want 15s", got)
	}

	hinted := &Policy{BaseDelay: 100 * time.Millisecond, Jitter: -1}
	err := &StatusError{Code: 429, RetryAfter: 5 * time.Second}
	if got := hinted.Backoff(1, err); got != 5*time.Second {
		t.Fatalf("hinted Backoff = %v, want the 5s Retry-After", got)
	}

	// Default jitter shaves at most 20% off the computed delay.
	jittered := &Policy{BaseDelay: 100 * time.Millisecond, Seed: 9}
	for i := 0; i < 10; i++ {
		d := jittered.Backoff(2, nil)
		if d < 160*time.Millisecond || d > 200*time.Millisecond {
			t.Fatalf("jittered Backoff(2) = %v, want within [160ms, 200ms]", d)
		}
	}
}
