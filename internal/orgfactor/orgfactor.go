// Package orgfactor implements the Organization Factor (θ), the metric
// the paper introduces (§5.4) to quantify how well an AS-to-Organization
// mapping captures the grouping of networks under common ownership.
//
// Construction: sort organization sizes s₁ ≥ s₂ ≥ … ≥ s_k, zero-pad to
// the universe size n (the number of networks in WHOIS), form cumulative
// sums C_i, and measure the area between the cumulative curve and the
// identity line C_i = i (the "every organization manages exactly one
// network" baseline).
//
// Equation 1 as typeset in the paper, θ = (1/n²)·Σ(C_i − i), has a
// maximum of (n−1)/(2n) → ½ for the single-organization extreme, while
// the text states θ ranges to 1 and reports AS2Org ≈ 0.3343.
// Back-computing from the paper's corpus statistics (n = 117,431
// networks, k = 95,300 organizations) shows the reported values match
// the area normalised by its maximum, θ = (2/n²)·Σ(C_i − i): the
// instant-rise upper bound for that n and k is 2(n−k)k/n² + (n−k)²/n² ≈
// 0.341 and a concave sorted ramp lands at ≈ 0.334. Theta therefore
// computes the normalised form; ThetaUnnormalized is the literal
// Equation 1 for comparison.
package orgfactor

import (
	"fmt"
	"sort"

	"github.com/nu-aqualab/borges/internal/cluster"
)

// excessArea returns Σ_{i=1..n} (C_i − i) for the given organization
// sizes zero-padded to n, where C is the cumulative sum of sizes sorted
// descending. It is the caller's responsibility that Σ sizes == n.
func excessArea(sizes []int, n int) int64 {
	// Mapping.Sizes() hands over its cached descending slice; skip the
	// copy-and-sort entirely when the input already arrives ordered.
	sorted := sizes
	if !sort.IsSorted(sort.Reverse(sort.IntSlice(sizes))) {
		sorted = append([]int(nil), sizes...)
		sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	}
	var cum, area int64
	for i := 1; i <= n; i++ {
		if i-1 < len(sorted) {
			cum += int64(sorted[i-1])
		}
		area += cum - int64(i)
	}
	return area
}

// ThetaFromSizes computes the normalised Organization Factor for a
// mapping with the given organization sizes over a universe of n
// networks. Sizes may be unsorted; organizations beyond the universe
// (Σ sizes > n) are an error.
func ThetaFromSizes(sizes []int, n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("orgfactor: non-positive universe size %d", n)
	}
	var total int64
	for _, s := range sizes {
		if s < 0 {
			return 0, fmt.Errorf("orgfactor: negative organization size %d", s)
		}
		total += int64(s)
	}
	if total > int64(n) {
		return 0, fmt.Errorf("orgfactor: organizations cover %d networks but universe has %d", total, n)
	}
	return 2 * float64(excessArea(sizes, n)) / (float64(n) * float64(n)), nil
}

// ThetaUnnormalized computes Equation 1 exactly as typeset:
// (1/n²)·Σ(C_i − i). Its single-organization maximum is (n−1)/(2n).
func ThetaUnnormalized(sizes []int, n int) (float64, error) {
	t, err := ThetaFromSizes(sizes, n)
	return t / 2, err
}

// Theta computes the normalised Organization Factor of a consolidated
// mapping, using the mapping's own network count as the universe. The
// caller must have registered the full WHOIS universe in the mapping
// (unmapped networks count as singleton organizations per §5.4).
func Theta(m *cluster.Mapping) (float64, error) {
	return ThetaFromSizes(m.Sizes(), m.NumASNs())
}

// CurvePoint is one point of the Figure 7 cumulative representation.
type CurvePoint struct {
	// Org is the 1-based organization index (sorted by descending size,
	// zero-padded to the universe size).
	Org int
	// Cumulative is C_i, the running sum of networks.
	Cumulative int64
}

// Curve returns the cumulative organization-size curve, zero-padded to
// n, downsampled to at most maxPoints points (endpoints always
// included). It is the series plotted in Figure 7.
func Curve(sizes []int, n, maxPoints int) []CurvePoint {
	if n <= 0 {
		return nil
	}
	sorted := append([]int(nil), sizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	step := 1
	if maxPoints > 1 && n > maxPoints {
		step = n / (maxPoints - 1)
	}
	var out []CurvePoint
	var cum int64
	for i := 1; i <= n; i++ {
		if i-1 < len(sorted) {
			cum += int64(sorted[i-1])
		}
		if (i-1)%step == 0 || i == n {
			out = append(out, CurvePoint{Org: i, Cumulative: cum})
		}
	}
	return out
}

// IdentityCurve returns the "all organizations manage a single network"
// baseline curve (C_i = i), downsampled like Curve.
func IdentityCurve(n, maxPoints int) []CurvePoint {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 1
	}
	return Curve(sizes, n, maxPoints)
}
