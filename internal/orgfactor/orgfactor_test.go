package orgfactor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

func TestThetaExtremes(t *testing.T) {
	// All singletons → 0.
	sizes := make([]int, 1000)
	for i := range sizes {
		sizes[i] = 1
	}
	got, err := ThetaFromSizes(sizes, 1000)
	if err != nil || got != 0 {
		t.Errorf("identity theta = %v err=%v", got, err)
	}
	// Single organization → (n−1)/n, approaching 1.
	got, err = ThetaFromSizes([]int{1000}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(1000-1) / 1000
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("single-org theta = %v, want %v", got, want)
	}
	// Unnormalized variant halves it.
	gotU, _ := ThetaUnnormalized([]int{1000}, 1000)
	if math.Abs(gotU-want/2) > 1e-12 {
		t.Errorf("unnormalized = %v", gotU)
	}
}

func TestThetaSmallExample(t *testing.T) {
	// n=4, one org of 2, two singletons: sizes 2,1,1.
	// C = [2,3,4,4]; Σ(C_i−i) = 1+1+1+0 = 3; θ = 2*3/16 = 0.375.
	got, err := ThetaFromSizes([]int{1, 2, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.375) > 1e-12 {
		t.Errorf("theta = %v, want 0.375", got)
	}
}

// TestThetaMatchesPaperScale reproduces the back-computation that fixed
// the normalisation: with the paper's corpus shape (n=117,431 networks,
// k=95,300 organizations, heavy-tailed multi-AS organizations topped by
// a 973-network org), the normalised θ lands near the published 0.3343,
// while the literal Equation 1 value would be half that.
func TestThetaMatchesPaperScale(t *testing.T) {
	const n = 117431
	const k = 95300
	extra := n - k // networks beyond one-per-org
	rng := rand.New(rand.NewSource(42))
	sizes := make([]int, 0, k)
	sizes = append(sizes, 973) // DNIC (US DoD)
	remaining := extra - 972
	// Heavy tail: geometric-ish sizes until the extras are spent.
	for remaining > 0 {
		s := 2
		for rng.Float64() < 0.35 && s < 400 {
			s += rng.Intn(9) + 1
		}
		if s-1 > remaining {
			s = remaining + 1
		}
		sizes = append(sizes, s)
		remaining -= s - 1
	}
	for len(sizes) < k {
		sizes = append(sizes, 1)
	}
	got, err := ThetaFromSizes(sizes, n)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.30 || got > 0.345 {
		t.Errorf("paper-scale theta = %v, want ≈0.334", got)
	}
}

func TestThetaErrors(t *testing.T) {
	if _, err := ThetaFromSizes([]int{1}, 0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := ThetaFromSizes([]int{-1}, 10); err == nil {
		t.Error("negative size should fail")
	}
	if _, err := ThetaFromSizes([]int{5, 6}, 10); err == nil {
		t.Error("oversubscribed universe should fail")
	}
}

func TestThetaFromMapping(t *testing.T) {
	b := cluster.NewBuilder()
	b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{1, 2, 3}})
	b.AddUniverse(4, 5)
	m := b.Build(nil)
	got, err := Theta(m)
	if err != nil {
		t.Fatal(err)
	}
	// sizes 3,1,1 over n=5: C=[3,4,5,5,5], Σ(C−i)=2+2+2+1+0=7, θ=14/25.
	if math.Abs(got-14.0/25.0) > 1e-12 {
		t.Errorf("theta = %v", got)
	}
}

// Property: θ is within [0, 1), monotone under merging two organizations,
// and zero exactly for all-singleton mappings.
func TestThetaProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sizes := make([]int, len(raw))
		n := 0
		for i, r := range raw {
			sizes[i] = int(r%7) + 1
			n += sizes[i]
		}
		theta, err := ThetaFromSizes(sizes, n)
		if err != nil || theta < 0 || theta >= 1 {
			return false
		}
		if len(sizes) >= 2 {
			merged := append([]int{sizes[0] + sizes[1]}, sizes[2:]...)
			thetaMerged, err := ThetaFromSizes(merged, n)
			if err != nil || thetaMerged < theta {
				return false // merging must never decrease θ
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCurve(t *testing.T) {
	pts := Curve([]int{3, 1}, 4, 0) // no downsampling
	want := []CurvePoint{{1, 3}, {2, 4}, {3, 4}, {4, 4}}
	if len(pts) != len(want) {
		t.Fatalf("pts = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("pts = %v, want %v", pts, want)
		}
	}
	// Downsampling keeps endpoints.
	pts = Curve(make([]int, 0), 1000, 10)
	if len(pts) == 0 || pts[0].Org != 1 || pts[len(pts)-1].Org != 1000 {
		t.Errorf("downsampled endpoints: %v … %v", pts[0], pts[len(pts)-1])
	}
	if len(pts) > 15 {
		t.Errorf("downsampling ineffective: %d points", len(pts))
	}
	if Curve(nil, 0, 5) != nil {
		t.Error("n=0 should yield nil")
	}
}

func TestIdentityCurve(t *testing.T) {
	pts := IdentityCurve(5, 0)
	for _, p := range pts {
		if p.Cumulative != int64(p.Org) {
			t.Errorf("identity curve point %+v", p)
		}
	}
}
