package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// Text generation for the PeeringDB notes and aka fields. The corpus
// mixes the idioms observed in real PeeringDB data: multilingual sibling
// declarations (the Deutsche Telekom pattern of Fig. 4), upstream
// connectivity listings (the Maxihost pattern of Listing 1), and plain
// operational noise containing digits (phone numbers, years, street
// addresses, prefix limits).

// siblingTemplates phrase a sibling declaration. %s expands to an
// "AS<digits>[, AS<digits>…]" listing.
var siblingTemplates = []string{
	"Our subsidiaries include %s.",
	"We also operate %s under the same organization.",
	"Sister networks: %s, all part of the same company.",
	"This network belongs to the same organization as %s.",
	"Formerly independent; merged with %s in a recent acquisition.",
	"Part of our group of networks together with %s.",
	"Esta red pertenece a la misma organización que %s.",
	"Somos parte del mismo grupo que %s.",
	"También operamos %s, filial de la misma empresa.",
	"Rede do mesmo grupo que %s.",
	"Também operamos %s, mesma organização.",
	"Wir sind eine Tochtergesellschaft; %s gehört zu unserem Konzern.",
	"Diese Netze sind Teil der gleichen Unternehmen: %s.",
	"Cette société est une filiale; %s fait partie du même groupe.",
	"Nous opérons aussi %s, même groupe.",
	"Questa rete appartiene a la stessa organizzazione di %s.",
}

// upstreamHeaderTemplates introduce a connectivity listing.
var upstreamHeaderTemplates = []string{
	"We connect directly with the following ISPs,",
	"Upstream providers:",
	"Transit is provided by the following carriers:",
	"Nossos provedores de trânsito:",
	"Nuestros proveedores de tránsito:",
	"Peering with the following networks at multiple IXPs:",
}

// upstreamNames feed the listing lines.
var upstreamNames = []string{
	"Algar", "Sparkle", "Voxility", "GTT", "Cogent", "Lumen", "Arelion",
	"Zayo", "HE", "Telia", "NTT", "Orange", "PCCW", "Telxius", "Seaborn",
}

// noiseTemplates carry digits with no sibling meaning.
var noiseTemplates = []string{
	"Contact our NOC: phone +%d (%d) %d-%d, available 24/7.",
	"Founded in %d, we serve residential and business customers.",
	"Max prefixes accepted: %d (IPv4) / %d (IPv6).",
	"Visit us at %d Market Street, Suite %d.",
	"Established %d. Copyright %d.",
	"Peak traffic: %d Gbps across %d ports.",
	"MTU %d supported on all peering ports, VLAN %d available.",
	"Oficina central: Avenida Principal %d, CP %d.",
	"NOC IP: 192.0.2.%d, looking glass on port %d.",
	"as-in: %d:100 announces customers; as-out: %d:200.",
}

// nonNumericTemplates are text fields without any digit (input-filter
// fodder).
var nonNumericTemplates = []string{
	"Regional internet service provider focused on residential fiber.",
	"Content delivery and cloud hosting. Peering policy: open.",
	"Please send peering requests to noc at our domain.",
	"Wholesale transit and IP services across the region.",
	"Proveedor regional de servicios de internet.",
	"Provedor regional de acesso à internet.",
	"Regionaler Internetanbieter für Privat- und Geschäftskunden.",
	"Open peering policy; we prefer bilateral sessions at IXPs.",
	"Family-owned ISP serving rural communities since the nineties.",
}

// asnList renders ASNs as "AS1, AS2 and AS3" style text.
func asnList(asns []asnum.ASN, rng *rand.Rand) string {
	parts := make([]string, len(asns))
	for i, a := range asns {
		if rng.Intn(4) == 0 {
			parts[i] = fmt.Sprintf("AS %d", uint32(a))
		} else {
			parts[i] = a.String()
		}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return strings.Join(parts[:len(parts)-1], ", ") + " and " + parts[len(parts)-1]
}

// siblingNotes renders a notes field that truly reports the given
// siblings (expected TP for the NER engine).
func siblingNotes(siblings []asnum.ASN, rng *rand.Rand) string {
	tpl := siblingTemplates[rng.Intn(len(siblingTemplates))]
	text := fmt.Sprintf(tpl, asnList(siblings, rng))
	// Sometimes prepend innocuous prose.
	if rng.Intn(3) == 0 {
		text = nonNumericTemplates[rng.Intn(len(nonNumericTemplates))] + "\n\n" + text
	}
	// Sometimes append an upstream section after a blank line; its
	// ASNs must NOT be extracted.
	if rng.Intn(4) == 0 {
		text += "\n\n" + upstreamListing(rng, 2+rng.Intn(3))
	}
	return text
}

// siblingAka renders an aka field listing sibling ASNs.
func siblingAka(siblings []asnum.ASN, rng *rand.Rand) string {
	parts := make([]string, 0, len(siblings)+1)
	if rng.Intn(2) == 0 {
		parts = append(parts, "NetGroup")
	}
	for _, a := range siblings {
		// Bare digits read as brand suffixes for small values, so only
		// large ASNs are ever listed without the AS prefix.
		if rng.Intn(3) == 0 && uint32(a) >= 256 {
			parts = append(parts, fmt.Sprintf("%d", uint32(a)))
		} else {
			parts = append(parts, a.String())
		}
	}
	return strings.Join(parts, ", ")
}

// upstreamListing renders a Maxihost-style connectivity section whose
// ASNs are decoys.
func upstreamListing(rng *rand.Rand, n int) string {
	var b strings.Builder
	b.WriteString(upstreamHeaderTemplates[rng.Intn(len(upstreamHeaderTemplates))])
	for i := 0; i < n; i++ {
		name := upstreamNames[rng.Intn(len(upstreamNames))]
		fmt.Fprintf(&b, "\n- %s (AS%d)", name, 100+rng.Intn(65000))
	}
	return b.String()
}

// noiseNotes renders numeric text with no sibling content (expected TN).
func noiseNotes(rng *rand.Rand) string {
	if rng.Intn(4) == 0 {
		return upstreamListing(rng, 2+rng.Intn(4))
	}
	tpl := noiseTemplates[rng.Intn(len(noiseTemplates))]
	nums := []any{
		1 + rng.Intn(99), 100 + rng.Intn(900), 100 + rng.Intn(900),
		1000 + rng.Intn(9000),
	}
	switch strings.Count(tpl, "%d") {
	case 2:
		if strings.Contains(tpl, "Founded") || strings.Contains(tpl, "Established") {
			return fmt.Sprintf(tpl, 1950+rng.Intn(70), 2000+rng.Intn(25))
		}
		return fmt.Sprintf(tpl, nums[2], nums[3])
	case 1:
		return fmt.Sprintf(tpl, 1950+rng.Intn(70))
	default:
		return fmt.Sprintf(tpl, nums...)
	}
}

// hardFNNotes phrases a true sibling so obliquely that a careful reader
// declines to extract it: a bare number with no affiliation cue (the
// paper's AT&T example, where the reported relationship is missed).
func hardFNNotes(sibling asnum.ASN, rng *rand.Rand) string {
	tpls := []string{
		"Additional registration: %d. Peering policy selective.",
		"Secondary number on file: %d. Contact noc for details.",
		"See record %d for the remainder of our infrastructure.",
	}
	return fmt.Sprintf(tpls[rng.Intn(len(tpls))], uint32(sibling))
}

// hardFPNotes explicitly-but-wrongly claims an unrelated ASN as a
// sibling (the paper's PACNET/HKBN example: the text is extracted
// correctly, the claim itself is wrong).
func hardFPNotes(wrongSibling asnum.ASN, rng *rand.Rand) string {
	tpls := []string{
		"Our sister network %s operates the metro ring.",
		"This network belongs to the same organization as %s.",
		"We also operate %s under the same organization.",
	}
	return fmt.Sprintf(tpls[rng.Intn(len(tpls))], wrongSibling.String())
}

// nonNumericText renders a digit-free field.
func nonNumericText(rng *rand.Rand) string {
	return nonNumericTemplates[rng.Intn(len(nonNumericTemplates))]
}
