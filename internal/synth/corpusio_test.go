package synth

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/nu-aqualab/borges/internal/apnic"
	"github.com/nu-aqualab/borges/internal/asrank"
	"github.com/nu-aqualab/borges/internal/peeringdb"
	"github.com/nu-aqualab/borges/internal/websim"
	"github.com/nu-aqualab/borges/internal/whois"
)

// TestWriteCorpusStreamEquivalence streams a corpus to disk chunk by
// chunk and checks that every file parses to the exact snapshot the
// buffered Generate + Write path produces: each streamed file is
// parsed back and re-serialized with the canonical buffered writer,
// and those bytes must equal the buffered dataset's serialization.
func TestWriteCorpusStreamEquivalence(t *testing.T) {
	cfg := Config{Seed: 3, Scale: 0.01}
	dir := t.TempDir()
	stats, err := WriteCorpusStream(dir, cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Chunks < 2 {
		t.Fatalf("expected a genuinely chunked write, got %d chunks", stats.Chunks)
	}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WHOISASNs != ds.WHOIS.NumASNs() || stats.WHOISOrgs != ds.WHOIS.NumOrgs() ||
		stats.PDBNets != ds.PDB.NumNets() || stats.PDBOrgs != ds.PDB.NumOrgs() ||
		stats.APNICRecords != ds.APNIC.Len() || stats.RankedASNs != ds.ASRank.Len() ||
		stats.Sites != ds.Web.NumSites() {
		t.Errorf("streamed stats %+v disagree with buffered dataset counts", stats)
	}
	if _, err := os.Stat(filepath.Join(dir, ".as2org.asn.spool")); !os.IsNotExist(err) {
		t.Error("ASN spool file left behind")
	}
	if _, err := os.Stat(filepath.Join(dir, ".peeringdb.net.spool")); !os.IsNotExist(err) {
		t.Error("net spool file left behind")
	}

	raw := func(name string) []byte {
		t.Helper()
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	// WHOIS: canonical re-serialization equality.
	ws, err := whois.Parse(bytes.NewReader(raw("as2org.jsonl")), ds.WHOIS.Date)
	if err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	if err := whois.Write(&got, ws); err != nil {
		t.Fatal(err)
	}
	if err := whois.Write(&want, ds.WHOIS); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("streamed as2org.jsonl does not round-trip to the buffered snapshot")
	}

	// PeeringDB: the streamed dump appends elements in chunk order
	// (net IDs are not chronological across generator phases, so the
	// global by-ASN sort cannot be reproduced without buffering);
	// canonical re-serialization equality is the contract.
	ps, err := peeringdb.Parse(bytes.NewReader(raw("peeringdb.json")), ds.PDB.Date)
	if err != nil {
		t.Fatal(err)
	}
	got.Reset()
	want.Reset()
	if err := peeringdb.Write(&got, ps); err != nil {
		t.Fatal(err)
	}
	if err := peeringdb.Write(&want, ds.PDB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("streamed peeringdb.json does not round-trip to the buffered snapshot")
	}

	// APNIC and AS-Rank: canonical re-serialization equality.
	at, err := apnic.Parse(bytes.NewReader(raw("apnic.csv")), ds.APNIC.Date)
	if err != nil {
		t.Fatal(err)
	}
	got.Reset()
	want.Reset()
	if err := apnic.Write(&got, at); err != nil {
		t.Fatal(err)
	}
	if err := apnic.Write(&want, ds.APNIC); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("streamed apnic.csv does not round-trip to the buffered table")
	}
	rk, err := asrank.Parse(bytes.NewReader(raw("asrank.csv")), ds.ASRank.Date)
	if err != nil {
		t.Fatal(err)
	}
	got.Reset()
	want.Reset()
	if err := asrank.Write(&got, rk); err != nil {
		t.Fatal(err)
	}
	if err := asrank.Write(&want, ds.ASRank); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("streamed asrank.csv does not round-trip to the buffered ranking")
	}

	// Web universe: canonical re-serialization equality.
	u, err := websim.ReadManifest(bytes.NewReader(raw("web.jsonl")))
	if err != nil {
		t.Fatal(err)
	}
	got.Reset()
	want.Reset()
	if err := websim.WriteManifest(&got, u); err != nil {
		t.Fatal(err)
	}
	if err := websim.WriteManifest(&want, ds.Web); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("streamed web.jsonl does not round-trip to the buffered universe")
	}
}

// TestWriteCorpusStreamSiteDedup pins a (seed, scale, chunk) triple
// where a site host recurs across chunks — a later generation phase
// enriches a site created in an earlier chunk, so web.jsonl carries
// two manifest lines for the same host. The stats counter must dedupe
// (it once reported 487 for 486 hosts here) and the manifest must
// still merge to the buffered universe exactly.
func TestWriteCorpusStreamSiteDedup(t *testing.T) {
	cfg := Config{Seed: 2, Scale: 0.02}
	dir := t.TempDir()
	stats, err := WriteCorpusStream(dir, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sites != ds.Web.NumSites() {
		t.Errorf("stats.Sites = %d, buffered universe has %d hosts", stats.Sites, ds.Web.NumSites())
	}
	blob, err := os.ReadFile(filepath.Join(dir, "web.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	u, err := websim.ReadManifest(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	if err := websim.WriteManifest(&got, u); err != nil {
		t.Fatal(err)
	}
	if err := websim.WriteManifest(&want, ds.Web); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("streamed web.jsonl does not merge to the buffered universe")
	}
}
