package synth

import "github.com/nu-aqualab/borges/internal/asnum"

// CongSpec describes one named international conglomerate embedded in
// the corpus with the user-population and footprint targets of Tables 8
// and 9. The "main" subsidiary is the organization AS2Org already sees
// (the largest prior group); the remaining subsidiaries are what Borges
// must attach to it.
type CongSpec struct {
	// Key is the stable identifier; BrandKey selects a simllm-known
	// logo ("" = unknown logo).
	Key, Name, BrandKey string
	// MainASN anchors the main subsidiary (0 = allocate).
	MainASN asnum.ASN
	// UsersAS2Org is the main subsidiary's user population (Table 8
	// AS2Org column); UsersBorges is the whole conglomerate's (Borges
	// column). Zero for companies without eyeball users.
	UsersAS2Org, UsersBorges int64
	// CountriesAS2Org is the number of countries the main subsidiary
	// serves; CountriesBorges the whole conglomerate (Table 9).
	CountriesAS2Org, CountriesBorges int
	// MainASNs / SubASNs: networks in the main org and per secondary
	// subsidiary.
	MainASNs, SubASNs int
	// Signals: which features can discover each secondary subsidiary's
	// link to the main org. Cycled across subsidiaries.
	Signals []SignalMask
	// TopRank places the main ASN in AS-Rank when > 0.
	TopRank int
}

// SignalMask marks which Borges features link a subsidiary to its
// conglomerate.
type SignalMask uint8

// Signal bits.
const (
	SigOIDP SignalMask = 1 << iota
	SigNotesAka
	SigRR
	SigFavicon
)

// Has reports whether the mask contains sig.
func (m SignalMask) Has(sig SignalMask) bool { return m&sig != 0 }

// allSignals cycles subsidiaries through rich multi-signal coverage.
var allSignals = []SignalMask{
	SigOIDP | SigRR | SigFavicon,
	SigRR | SigFavicon,
	SigOIDP | SigNotesAka,
	SigFavicon | SigOIDP,
	SigRR,
	SigOIDP,
	SigNotesAka | SigFavicon,
	SigRR | SigOIDP | SigNotesAka | SigFavicon,
}

// conglomerates is the named-company registry. User numbers are the
// Table 8 rows; country counts the Table 9 rows; companies appearing in
// only one table get defaults for the other.
var conglomerates = []CongSpec{
	{Key: "deutsche-telekom", Name: "Deutsche Telekom", BrandKey: "deutsche-telekom", MainASN: 3320,
		UsersAS2Org: 24_779_378, UsersBorges: 46_420_443, CountriesAS2Org: 3, CountriesBorges: 14,
		MainASNs: 4, SubASNs: 2, TopRank: 12},
	{Key: "telkom-indonesia", Name: "Telkom Indonesia", BrandKey: "telkom-indonesia", MainASN: 7713,
		UsersAS2Org: 33_996_157, UsersBorges: 54_540_440, CountriesAS2Org: 1, CountriesBorges: 4,
		MainASNs: 3, SubASNs: 2, TopRank: 55},
	{Key: "charter", Name: "Charter", BrandKey: "charter", MainASN: 20115,
		UsersAS2Org: 26_624_394, UsersBorges: 44_440_982, CountriesAS2Org: 1, CountriesBorges: 2,
		MainASNs: 5, SubASNs: 3, TopRank: 40},
	{Key: "virgin", Name: "Virgin", BrandKey: "virgin", MainASN: 5089,
		UsersAS2Org: 11_539_556, UsersBorges: 25_973_469, CountriesAS2Org: 1, CountriesBorges: 3,
		MainASNs: 3, SubASNs: 2, TopRank: 80},
	{Key: "tigo", Name: "TIGO", BrandKey: "tigo", MainASN: 27882,
		UsersAS2Org: 2_792_759, UsersBorges: 15_736_350, CountriesAS2Org: 2, CountriesBorges: 9,
		MainASNs: 2, SubASNs: 1, TopRank: 93},
	{Key: "claro", Name: "Claro", BrandKey: "claro", MainASN: 27995,
		UsersAS2Org: 6_274_692, UsersBorges: 18_257_599, CountriesAS2Org: 1, CountriesBorges: 6,
		MainASNs: 2, SubASNs: 1, TopRank: 64},
	{Key: "orange", Name: "Orange", BrandKey: "orange", MainASN: 5511,
		UsersAS2Org: 8_983_260, UsersBorges: 18_711_548, CountriesAS2Org: 2, CountriesBorges: 5,
		MainASNs: 3, SubASNs: 2, TopRank: 15},
	{Key: "cablevision-mx", Name: "Cablevision Mexico", BrandKey: "cablevision-mx", MainASN: 28548,
		UsersAS2Org: 5_992_157, UsersBorges: 12_977_362, CountriesAS2Org: 1, CountriesBorges: 2,
		MainASNs: 2, SubASNs: 2, TopRank: 320},
	{Key: "iliad", Name: "Free (Iliad)", BrandKey: "iliad", MainASN: 12322,
		UsersAS2Org: 7_085_849, UsersBorges: 13_183_971, CountriesAS2Org: 1, CountriesBorges: 2,
		MainASNs: 2, SubASNs: 2, TopRank: 130},
	{Key: "telefonica", Name: "Telefonica", BrandKey: "telefonica", MainASN: 12956,
		UsersAS2Org: 11_147_816, UsersBorges: 17_239_924, CountriesAS2Org: 2, CountriesBorges: 4,
		MainASNs: 4, SubASNs: 2, TopRank: 18},
	{Key: "lg-powercomm", Name: "LG Powercomm", BrandKey: "lg-powercomm", MainASN: 17858,
		UsersAS2Org: 6_689_237, UsersBorges: 12_683_677, CountriesAS2Org: 1, CountriesBorges: 2,
		MainASNs: 2, SubASNs: 2, TopRank: 210},
	{Key: "chunghwa", Name: "Chunghwa Telecom", BrandKey: "chunghwa", MainASN: 3462,
		UsersAS2Org: 7_276_335, UsersBorges: 12_104_016, CountriesAS2Org: 1, CountriesBorges: 2,
		MainASNs: 3, SubASNs: 2, TopRank: 150},
	{Key: "telecom-hulum", Name: "Telecom Hulum", BrandKey: "telecom-hulum", MainASN: 48832,
		UsersAS2Org: 12_875_363, UsersBorges: 17_124_563, CountriesAS2Org: 1, CountriesBorges: 2,
		MainASNs: 2, SubASNs: 1, TopRank: 400},
	{Key: "claro-brasil", Name: "Claro Brasil", BrandKey: "claro-brasil", MainASN: 28573,
		UsersAS2Org: 16_912_676, UsersBorges: 20_917_350, CountriesAS2Org: 1, CountriesBorges: 2,
		MainASNs: 3, SubASNs: 2, TopRank: 75},
	{Key: "act-fibernet", Name: "ACT Fibernet", BrandKey: "act-fibernet", MainASN: 24309,
		UsersAS2Org: 4_007_919, UsersBorges: 7_925_537, CountriesAS2Org: 1, CountriesBorges: 2,
		MainASNs: 2, SubASNs: 1, TopRank: 500},
	{Key: "jcom", Name: "J:COM (Japan)", BrandKey: "jcom", MainASN: 9824,
		UsersAS2Org: 4_945_904, UsersBorges: 7_905_008, CountriesAS2Org: 1, CountriesBorges: 2,
		MainASNs: 2, SubASNs: 1, TopRank: 600},
	{Key: "telia", Name: "Telia", BrandKey: "telia", MainASN: 1299,
		UsersAS2Org: 3_159_568, UsersBorges: 5_713_328, CountriesAS2Org: 2, CountriesBorges: 4,
		MainASNs: 3, SubASNs: 1, TopRank: 3},
	{Key: "brm", Name: "BRM (Brasil)", BrandKey: "brm", MainASN: 28126,
		UsersAS2Org: 10_055_599, UsersBorges: 12_248_262, CountriesAS2Org: 1, CountriesBorges: 2,
		MainASNs: 2, SubASNs: 1, TopRank: 700},
	{Key: "gigamais", Name: "GigaMais Telecom", BrandKey: "gigamais", MainASN: 53006,
		UsersAS2Org: 1_071_147, UsersBorges: 3_134_677, CountriesAS2Org: 1, CountriesBorges: 2,
		MainASNs: 2, SubASNs: 1, TopRank: 800},
	{Key: "telenor", Name: "Telenor", BrandKey: "telenor", MainASN: 2119,
		UsersAS2Org: 2_415_632, UsersBorges: 4_415_607, CountriesAS2Org: 1, CountriesBorges: 3,
		MainASNs: 2, SubASNs: 1, TopRank: 90},

	// Table 9 footprint-growth companies without Table 8 rows: small
	// per-country user counts, wide country coverage.
	{Key: "digicel", Name: "Digicel", BrandKey: "digicel", MainASN: 23520,
		UsersAS2Org: 820_000, UsersBorges: 2_350_000, CountriesAS2Org: 4, CountriesBorges: 25,
		MainASNs: 4, SubASNs: 1, TopRank: 450},
	{Key: "zscaler", Name: "Zscaler", BrandKey: "zscaler", MainASN: 22616,
		UsersAS2Org: 110_000, UsersBorges: 290_000, CountriesAS2Org: 16, CountriesBorges: 28,
		MainASNs: 6, SubASNs: 1, TopRank: 900},
	{Key: "ntt", Name: "NTT", BrandKey: "ntt", MainASN: 2914,
		UsersAS2Org: 2_650_000, UsersBorges: 4_100_000, CountriesAS2Org: 2, CountriesBorges: 11,
		MainASNs: 4, SubASNs: 1, TopRank: 2},
	{Key: "packethub", Name: "PacketHub", BrandKey: "", MainASN: 62240,
		UsersAS2Org: 95_000, UsersBorges: 160_000, CountriesAS2Org: 61, CountriesBorges: 70,
		MainASNs: 5, SubASNs: 1, TopRank: 1500},
	{Key: "columbus", Name: "Columbus Networks", BrandKey: "columbus", MainASN: 23487,
		UsersAS2Org: 640_000, UsersBorges: 1_410_000, CountriesAS2Org: 5, CountriesBorges: 13,
		MainASNs: 3, SubASNs: 1, TopRank: 350},
	{Key: "cable-wireless", Name: "Cable & Wireless", BrandKey: "cable-wireless", MainASN: 1273,
		UsersAS2Org: 1_950_000, UsersBorges: 3_260_000, CountriesAS2Org: 7, CountriesBorges: 14,
		MainASNs: 3, SubASNs: 1, TopRank: 25},
	{Key: "mainone", Name: "MainOne", BrandKey: "mainone", MainASN: 37282,
		UsersAS2Org: 310_000, UsersBorges: 740_000, CountriesAS2Org: 3, CountriesBorges: 9,
		MainASNs: 2, SubASNs: 1, TopRank: 1100},
	{Key: "cogent", Name: "Cogent", BrandKey: "cogent", MainASN: 174,
		UsersAS2Org: 1_150_000, UsersBorges: 1_730_000, CountriesAS2Org: 18, CountriesBorges: 24,
		MainASNs: 5, SubASNs: 1, TopRank: 4},
	{Key: "leaseweb", Name: "Leaseweb", BrandKey: "leaseweb", MainASN: 60626,
		UsersAS2Org: 86_000, UsersBorges: 215_000, CountriesAS2Org: 3, CountriesBorges: 9,
		MainASNs: 3, SubASNs: 1, TopRank: 1300},
	{Key: "latitude-sh", Name: "Latitude Sh", BrandKey: "", MainASN: 262287,
		UsersAS2Org: 120_000, UsersBorges: 185_000, CountriesAS2Org: 16, CountriesBorges: 21,
		MainASNs: 4, SubASNs: 1, TopRank: 2500},
	{Key: "xtom", Name: "xTom GmbH", BrandKey: "", MainASN: 3214,
		UsersAS2Org: 54_000, UsersBorges: 130_000, CountriesAS2Org: 4, CountriesBorges: 9,
		MainASNs: 3, SubASNs: 1, TopRank: 2800},
	{Key: "contabo", Name: "Contabo", BrandKey: "contabo", MainASN: 51167,
		UsersAS2Org: 140_000, UsersBorges: 230_000, CountriesAS2Org: 15, CountriesBorges: 20,
		MainASNs: 3, SubASNs: 1, TopRank: 1800},
	{Key: "softlayer", Name: "SoftLayer", BrandKey: "softlayer", MainASN: 36351,
		UsersAS2Org: 230_000, UsersBorges: 420_000, CountriesAS2Org: 7, CountriesBorges: 11,
		MainASNs: 4, SubASNs: 1, TopRank: 220},
	{Key: "uninett", Name: "UNINETT", BrandKey: "", MainASN: 224,
		UsersAS2Org: 480_000, UsersBorges: 960_000, CountriesAS2Org: 1, CountriesBorges: 5,
		MainASNs: 2, SubASNs: 1, TopRank: 1900},
	{Key: "iboss", Name: "IBOSS", BrandKey: "", MainASN: 137922,
		UsersAS2Org: 61_000, UsersBorges: 118_000, CountriesAS2Org: 3, CountriesBorges: 6,
		MainASNs: 2, SubASNs: 1, TopRank: 3200},
	{Key: "misaka", Name: "Misaka", BrandKey: "", MainASN: 57695,
		UsersAS2Org: 42_000, UsersBorges: 99_000, CountriesAS2Org: 2, CountriesBorges: 5,
		MainASNs: 2, SubASNs: 1, TopRank: 3600},

	// Flagship merger stories used throughout the paper.
	{Key: "lumen", Name: "Lumen", BrandKey: "lumen", MainASN: 3356,
		UsersAS2Org: 9_850_000, UsersBorges: 14_230_000, CountriesAS2Org: 2, CountriesBorges: 4,
		MainASNs: 4, SubASNs: 3, TopRank: 1,
		Signals: []SignalMask{SigOIDP | SigRR, SigOIDP}},
	{Key: "t-mobile", Name: "T-Mobile US", BrandKey: "t-mobile", MainASN: 21928,
		UsersAS2Org: 18_420_000, UsersBorges: 21_730_000, CountriesAS2Org: 1, CountriesBorges: 2,
		MainASNs: 3, SubASNs: 2, TopRank: 110,
		Signals: []SignalMask{SigRR}},
	{Key: "vodafone", Name: "Vodafone", BrandKey: "vodafone", MainASN: 12730,
		UsersAS2Org: 6_120_000, UsersBorges: 9_870_000, CountriesAS2Org: 2, CountriesBorges: 6,
		MainASNs: 3, SubASNs: 1, TopRank: 35},
}

// HGSpec describes one hypergiant (Figure 9).
type HGSpec struct {
	Key, Name, BrandKey string
	ASN                 asnum.ASN
	// BaseASNs is the AS2Org-visible organization size; Gain is the
	// extra networks Borges attaches (0 = unchanged).
	BaseASNs, Gain int
	// GainSignal selects the feature that discovers the gain.
	GainSignal SignalMask
	TopRank    int
}

// hypergiants is the 16-company list of §6.1 with the Figure 9 deltas:
// Edgecast +9 (consolidation with Limelight via the edg.io redirect),
// Google +3, Microsoft +1, Amazon +1.
var hypergiants = []HGSpec{
	{Key: "akamai", Name: "Akamai", BrandKey: "akamai", ASN: 20940, BaseASNs: 12, TopRank: 7},
	{Key: "amazon", Name: "Amazon", BrandKey: "amazon", ASN: 16509, BaseASNs: 9, Gain: 1, GainSignal: SigFavicon, TopRank: 8},
	{Key: "apple", Name: "Apple", BrandKey: "apple", ASN: 714, BaseASNs: 3, TopRank: 160},
	{Key: "facebook", Name: "Facebook", BrandKey: "facebook", ASN: 32934, BaseASNs: 4, TopRank: 45},
	{Key: "google", Name: "Google", BrandKey: "google", ASN: 15169, BaseASNs: 7, Gain: 3, GainSignal: SigOIDP, TopRank: 5},
	{Key: "netflix", Name: "Netflix", BrandKey: "netflix", ASN: 2906, BaseASNs: 2, TopRank: 140},
	{Key: "yahoo", Name: "Yahoo!", BrandKey: "", ASN: 10310, BaseASNs: 6, TopRank: 170},
	{Key: "ovh", Name: "OVH", BrandKey: "", ASN: 16276, BaseASNs: 4, TopRank: 60},
	{Key: "limelight", Name: "Limelight", BrandKey: "edgio", ASN: 22822, BaseASNs: 9, TopRank: 100},
	{Key: "microsoft", Name: "Microsoft", BrandKey: "microsoft", ASN: 8075, BaseASNs: 8, Gain: 1, GainSignal: SigNotesAka, TopRank: 9},
	{Key: "twitter", Name: "Twitter", BrandKey: "", ASN: 13414, BaseASNs: 2, TopRank: 420},
	{Key: "twitch", Name: "Twitch", BrandKey: "", ASN: 46489, BaseASNs: 2, TopRank: 430},
	{Key: "cloudflare", Name: "Cloudflare", BrandKey: "cloudflare", ASN: 13335, BaseASNs: 3, TopRank: 11},
	{Key: "edgecast", Name: "EdgeCast", BrandKey: "edgio", ASN: 15133, BaseASNs: 3, Gain: 9, GainSignal: SigRR, TopRank: 105},
	{Key: "booking", Name: "Booking.com", BrandKey: "", ASN: 43996, BaseASNs: 2, TopRank: 1200},
	{Key: "spotify", Name: "Spotify", BrandKey: "", ASN: 8403, BaseASNs: 2, TopRank: 1000},
}

// countryPool provides country codes for subsidiary allocation.
var countryPool = []string{
	"US", "DE", "GB", "FR", "ES", "IT", "NL", "PL", "AT", "CH", "SE", "NO",
	"DK", "FI", "PT", "GR", "CZ", "SK", "HU", "RO", "HR", "BR", "AR", "CL",
	"PE", "CO", "MX", "DO", "PR", "EC", "BO", "PY", "UY", "GT", "SV", "HN",
	"NI", "CR", "PA", "JM", "TT", "BB", "HT", "GY", "SR", "BZ", "LC", "VC",
	"GD", "DM", "KN", "AG", "BS", "JP", "KR", "TW", "CN", "HK", "SG", "MY",
	"TH", "VN", "PH", "ID", "IN", "BD", "PK", "LK", "NP", "AU", "NZ", "FJ",
	"PG", "ZA", "NG", "GH", "KE", "TZ", "UG", "EG", "MA", "TN", "SN", "CI",
	"CM", "AO", "MZ", "TR", "SA", "AE", "QA", "KW", "BH", "OM", "JO", "LB",
	"IL", "UA", "KZ", "BY", "RS", "BG", "SI", "LT", "LV", "EE", "IS", "IE",
	"BE", "LU", "MT", "CY", "AL", "MK", "BA", "ME", "MD", "GE", "AM", "AZ",
}

// Hypergiants returns the embedded hypergiant registry (read-only).
func Hypergiants() []HGSpec { return append([]HGSpec(nil), hypergiants...) }

// Conglomerates returns the embedded conglomerate registry (read-only).
func Conglomerates() []CongSpec { return append([]CongSpec(nil), conglomerates...) }
