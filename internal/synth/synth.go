// Package synth generates the calibrated synthetic corpus this
// reproduction runs on: WHOIS (CAIDA AS2Org) and PeeringDB snapshots, a
// simulated web universe, APNIC per-AS user-population estimates, and a
// CAIDA AS-Rank ranking — together with the ground truth the evaluation
// harness scores against.
//
// The generator is seeded and fully deterministic. At Scale 1.0 it
// targets the corpus statistics the paper publishes for its July 2024
// snapshots (§5.2): 117,431 WHOIS ASNs in 95,300 organizations; 30,955
// PeeringDB networks in 27,712 organizations; 17,633 non-empty text
// fields of which 2,916 are numeric; 26,225 website fields referencing
// 24,200 unique URLs; roughly 22.5k reachable networks converging on
// ~20.1k final URLs; ~14.5k unique favicons of which 440 are shared by
// more than one final URL; and a 4.21-billion-user APNIC population.
// Named conglomerates, hypergiants, and merger stories (Lumen/Level3,
// Edgecast/Limelight, Sprint/T-Mobile, Claro, Digicel, DE-CIX, …) are
// embedded so every table and figure reports the entities the paper
// reports.
package synth

import (
	"fmt"
	"math/rand"

	"github.com/nu-aqualab/borges/internal/apnic"
	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/asrank"
	"github.com/nu-aqualab/borges/internal/peeringdb"
	"github.com/nu-aqualab/borges/internal/websim"
	"github.com/nu-aqualab/borges/internal/whois"
)

// Config parameterises generation.
type Config struct {
	// Seed drives all pseudo-randomness (default 1).
	Seed int64
	// Scale multiplies the anonymous-population targets; 1.0 is paper
	// scale. Named entities are always embedded in full. Values around
	// 0.05 give fast test corpora.
	Scale float64
}

// Scale bounds. MinScale keeps every quota at least 1; MaxScale is
// bounded by the 32-bit ASN space: the allocator starts at 200000 and
// at MaxScale the WHOIS population (~120M ASNs) still leaves the
// uint32 counter far from wrapping. All intermediate quota arithmetic
// is float64/int64 and safe well past this bound.
const (
	MinScale = 0.005
	MaxScale = 1024.0
)

// Dataset is a complete generated corpus.
type Dataset struct {
	Config Config
	WHOIS  *whois.Snapshot
	PDB    *peeringdb.Snapshot
	Web    *websim.Universe
	APNIC  *apnic.Table
	ASRank *asrank.Ranking
	Truth  *GroundTruth
}

// targets are the paper's corpus statistics at Scale 1.0.
type targets struct {
	whoisASNs, whoisOrgs int
	pdbNets, pdbOrgs     int

	textRecords    int // non-empty notes/aka
	numericRecords int // containing digits
	siblingRecords int // truly reporting extractable siblings
	hardFN, hardFP int

	websiteNets   int // nets with a website field
	duplicateURLs int // nets sharing a URL with another net
	downNets      int // nets whose site is unreachable

	sameBrandCompany  int // shared favicon + same brand label (step 1)
	diffRecoverTotal  int // claro-style recoverable groups (step 2)
	diffUnrecoverable int // DE-CIX-style natural FNs
	frameworkGroups   int // default framework icons
	fpGroups          int // framework icons behind a shared brand label

	pairsP, pairsRR, pairsNA, pairsF int // anonymous merge units

	changedOrgs     int   // orgs whose population changes under Borges
	unchangedOrgs   int   // orgs with users and no change
	totalUsers      int64 // global APNIC population
	changedAS2Org   int64 // Σ largest-prior-group users over changed orgs
	changedMarginal int64 // Σ marginal growth (Borges − AS2Org)

	rankSize int
	dodASNs  int
	iscNets  int
}

func scaled(cfg Config) targets {
	s := cfg.Scale
	m := func(v int) int {
		out := int(float64(v)*s + 0.5)
		if v > 0 && out < 1 {
			out = 1
		}
		return out
	}
	return targets{
		whoisASNs: m(117431), whoisOrgs: m(95300),
		pdbNets: m(30955), pdbOrgs: m(27712),
		textRecords:    m(17633),
		numericRecords: m(2916),
		siblingRecords: m(861), // 849 extracted + 12 missed
		hardFN:         m(12),
		hardFP:         m(5),
		websiteNets:    m(26225),
		duplicateURLs:  m(2025),
		downNets:       m(3702),

		sameBrandCompany:  m(280),
		diffRecoverTotal:  m(38),
		diffUnrecoverable: m(5),
		frameworkGroups:   m(116),
		fpGroups:          m(1),

		pairsP: m(850), pairsRR: m(430), pairsNA: m(260), pairsF: m(60),

		changedOrgs:     m(352),
		unchangedOrgs:   m(25105),
		totalUsers:      int64(float64(4_211_000_000) * s),
		changedAS2Org:   int64(float64(1_060_840_352) * s), // 352 × 3,013,751
		changedMarginal: int64(float64(192_722_464) * s),   // 352 × 547,507

		rankSize: m(10000),
		dodASNs:  m(973),
		iscNets:  m(82),
	}
}

// gen is the generator's working state.
type gen struct {
	cfg Config
	t   targets
	rng *rand.Rand
	ds  *Dataset

	used     map[asnum.ASN]bool
	nextASN  uint32
	nextPDBO int
	nextPDBN int

	hostUsed  map[string]bool
	rankTaken map[int]bool

	// Bookkeeping toward quotas.
	countSibling, countHardFN, countHardFP int
	countNumericNoise, countNonNumeric     int
	countWebsites, countDupURLs, countDown int
	countSameBrand, countDiffRecover       int
	countDiffUnrecover, countFramework     int
	countChanged                           int

	// changedMains/changedSubs accumulate APNIC rows of anonymous
	// changed orgs for final rescaling toward the Table 7 means.
	anonChangedAS2Org, anonChangedMarginal int64

	// named carries bookkeeping shared across build phases.
	named namedState

	// Streaming state. When emit is set, the working dataset is
	// yielded and replaced with a fresh chunk every chunkUnits
	// generation units. Because the flushed snapshots reset, quota
	// loops read the cumulative counters below instead of the live
	// dataset, and the ranking phase replays the retained ASN list
	// instead of WHOIS.ASNs().
	emit         func(*Dataset) error
	chunkUnits   int
	unitsInChunk int

	cumWHOISOrgs int
	cumWHOISASNs int
	cumRank      int
	allWHOIS     []asnum.ASN
}

// newChunk returns an empty dataset slice carrying the run's config and
// snapshot dates.
func newChunk(cfg Config) *Dataset {
	return &Dataset{
		Config: cfg,
		WHOIS:  whois.NewSnapshot("20240701"),
		PDB:    peeringdb.NewSnapshot("20240724"),
		Web:    websim.New(),
		APNIC:  apnic.NewTable("20240701"),
		ASRank: asrank.NewRanking("20240701"),
		Truth:  newGroundTruth(),
	}
}

func newGen(cfg Config) (*gen, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	if cfg.Scale < MinScale || cfg.Scale > MaxScale {
		return nil, fmt.Errorf("synth: scale %v out of range [%v, %v]", cfg.Scale, MinScale, MaxScale)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &gen{
		cfg:       cfg,
		t:         scaled(cfg),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		ds:        newChunk(cfg),
		used:      make(map[asnum.ASN]bool),
		nextASN:   200000,
		nextPDBO:  1,
		nextPDBN:  1,
		hostUsed:  make(map[string]bool),
		rankTaken: make(map[int]bool),
	}, nil
}

// run executes the build phases in their fixed order.
func (g *gen) run() {
	g.buildConglomerates()
	g.buildHypergiants()
	g.buildSpecials()
	g.buildMergeUnits()
	g.buildClassifierCorpus()
	g.buildFill()
	g.buildRanking()
}

// Generate builds a corpus.
func Generate(cfg Config) (*Dataset, error) {
	g, err := newGen(cfg)
	if err != nil {
		return nil, err
	}
	g.run()
	return g.ds, nil
}

// emitAbort unwinds generation when a yield returns an error.
type emitAbort struct{ err error }

// GenerateStream builds the exact corpus Generate builds — same seed,
// same records, same pseudo-random draws — but yields it as a sequence
// of partial Dataset chunks of roughly chunkUnits generation units
// each, so peak memory is bounded by the chunk size instead of the
// corpus size. Every record lands in exactly one chunk; merging the
// chunks (MergeChunk) reproduces Generate's output record for record
// at any chunk size. chunkUnits <= 0 yields the whole corpus as a
// single chunk. A yield error aborts generation and is returned.
//
// Flushes only happen at whole-unit boundaries in the anonymous fill
// phases: the named builders mutate records they created earlier in
// the same phase (setNetText), so their output always shares a chunk.
func GenerateStream(cfg Config, chunkUnits int, yield func(*Dataset) error) (err error) {
	if yield == nil {
		return fmt.Errorf("synth: GenerateStream requires a yield function")
	}
	g, gerr := newGen(cfg)
	if gerr != nil {
		return gerr
	}
	g.emit = yield
	g.chunkUnits = chunkUnits
	defer func() {
		if r := recover(); r != nil {
			a, ok := r.(emitAbort)
			if !ok {
				panic(r)
			}
			err = a.err
		}
	}()
	g.run()
	g.flush()
	return nil
}

// maybeFlush marks one completed generation unit and flushes the
// working chunk when it reaches the configured size. A unit is one
// self-contained record group (an org with its nets, sites, and truth
// entries) — nothing generated later mutates it, so the chunk boundary
// is always safe.
func (g *gen) maybeFlush() {
	if g.emit == nil || g.chunkUnits <= 0 {
		return
	}
	g.unitsInChunk++
	if g.unitsInChunk >= g.chunkUnits {
		g.flush()
	}
}

// flush yields the working chunk and starts a fresh one.
func (g *gen) flush() {
	if g.emit == nil {
		return
	}
	ds := g.ds
	g.ds = newChunk(g.cfg)
	g.unitsInChunk = 0
	if err := g.emit(ds); err != nil {
		panic(emitAbort{err})
	}
}

// MergeChunk folds a streamed chunk into dst, in yield order. The
// result of merging every chunk of a GenerateStream run is
// record-for-record identical to the Generate dataset for the same
// config: each container's deterministic Write ordering makes the
// serialized forms byte-identical.
func MergeChunk(dst, src *Dataset) {
	for _, id := range src.WHOIS.OrgIDs() {
		dst.WHOIS.AddOrg(*src.WHOIS.Org(id))
	}
	for _, id := range src.WHOIS.OrgIDs() {
		for _, a := range src.WHOIS.Members(id) {
			dst.WHOIS.AddAS(*src.WHOIS.AS(a))
		}
	}
	for _, o := range src.PDB.Orgs() {
		dst.PDB.AddOrg(*o)
	}
	for _, n := range src.PDB.Nets() {
		dst.PDB.AddNet(*n)
	}
	for _, m := range src.Web.Export() {
		dst.Web.AddManifest(m)
	}
	for _, r := range src.APNIC.Records() {
		dst.APNIC.Add(r)
	}
	for _, e := range src.ASRank.Entries() {
		// Ranks and ASNs are globally unique across chunks by
		// construction; an error here would mean a generator bug, and
		// the dropped entry surfaces in the equivalence checks.
		_ = dst.ASRank.Add(e)
	}
	for _, o := range src.Truth.Orgs() {
		dst.Truth.addOrg(o)
	}
	for a, sibs := range src.Truth.NERSiblings {
		dst.Truth.NERSiblings[a] = sibs
	}
	for a, k := range src.Truth.NERKind {
		dst.Truth.NERKind[a] = k
	}
	for h, k := range src.Truth.iconKind {
		dst.Truth.iconKind[h] = k
	}
}

// ---- allocation helpers ----

func (g *gen) alloc() asnum.ASN {
	for {
		a := asnum.ASN(g.nextASN)
		g.nextASN++
		if !a.IsReserved() && !g.used[a] {
			g.used[a] = true
			return a
		}
	}
}

func (g *gen) claim(a asnum.ASN) asnum.ASN {
	if a == 0 || g.used[a] {
		return g.alloc()
	}
	g.used[a] = true
	return a
}

func (g *gen) pdbOrgID() int {
	id := g.nextPDBO
	g.nextPDBO++
	return id
}

func (g *gen) pdbNetID() int {
	id := g.nextPDBN
	g.nextPDBN++
	return id
}

// host returns a unique hostname based on the proposal, appending a
// counter on collision.
func (g *gen) host(proposal string) string {
	h := proposal
	for i := 2; g.hostUsed[h]; i++ {
		h = fmt.Sprintf("%s%d", proposal, i)
	}
	g.hostUsed[h] = true
	return h
}

// rank assigns the closest free rank at or after want (1-based).
func (g *gen) rank(want int) int {
	if want < 1 {
		want = 1
	}
	for g.rankTaken[want] {
		want++
	}
	g.rankTaken[want] = true
	return want
}

// addWHOIS registers an org and its ASNs. The cumulative counters and
// the retained ASN list survive chunk flushes; the quota loops and the
// ranking phase read them instead of the (possibly reset) snapshot.
func (g *gen) addWHOIS(orgID, name, country string, asns []asnum.ASN) {
	g.ds.WHOIS.AddOrg(whois.Org{ID: orgID, Name: name, Country: country, Source: rirFor(country)})
	for _, a := range asns {
		g.ds.WHOIS.AddAS(whois.ASRecord{ASN: a, OrgID: orgID, Name: name, Source: rirFor(country)})
	}
	g.cumWHOISOrgs++
	g.cumWHOISASNs += len(asns)
	g.allWHOIS = append(g.allWHOIS, asns...)
}

// numNets is the cumulative PeeringDB net count: every net takes a
// fresh ID from pdbNetID, so the counter is the count (setNetText
// replaces an existing ID and does not change it).
func (g *gen) numNets() int { return g.nextPDBN - 1 }

func rirFor(cc string) string {
	switch cc {
	case "US", "CA":
		return "ARIN"
	case "BR", "AR", "CL", "PE", "CO", "MX", "DO", "EC", "BO", "PY", "UY",
		"GT", "SV", "HN", "NI", "CR", "PA", "JM", "TT", "PR", "HT":
		return "LACNIC"
	case "JP", "KR", "TW", "CN", "HK", "SG", "MY", "TH", "VN", "PH", "ID",
		"IN", "BD", "PK", "LK", "NP", "AU", "NZ", "FJ", "PG":
		return "APNIC"
	case "ZA", "NG", "GH", "KE", "TZ", "UG", "EG", "MA", "TN", "SN", "CI",
		"CM", "AO", "MZ":
		return "AFRINIC"
	default:
		return "RIPE"
	}
}

// addNet registers a PeeringDB network.
func (g *gen) addNet(orgID int, asn asnum.ASN, name, aka, notes, website string) {
	g.ds.PDB.AddNet(peeringdb.Net{
		ID: g.pdbNetID(), OrgID: orgID, ASN: asn,
		Name: name, Aka: aka, Notes: notes, Website: website,
	})
	if notes != "" || aka != "" {
		hasNum := hasDigits(notes) || hasDigits(aka)
		if !hasNum {
			g.countNonNumeric++
		}
	}
	if website != "" {
		g.countWebsites++
	}
}

func hasDigits(s string) bool {
	for _, r := range s {
		if r >= '0' && r <= '9' {
			return true
		}
	}
	return false
}

// users adds an APNIC row.
func (g *gen) users(a asnum.ASN, cc string, n int64) {
	if n <= 0 {
		return
	}
	g.ds.APNIC.Add(apnic.Record{ASN: a, CC: cc, Users: n, PctOfCountry: 0})
}

// splitUsers distributes total across k parts deterministically with
// mild variation, parts summing exactly to total.
func (g *gen) splitUsers(total int64, k int) []int64 {
	if k <= 0 {
		return nil
	}
	out := make([]int64, k)
	base := total / int64(k)
	var assigned int64
	for i := 0; i < k; i++ {
		jitter := int64(0)
		if base > 10 {
			jitter = int64(g.rng.Float64()*0.4-0.2) * (base / 10) * 2
		}
		out[i] = base + jitter
		if out[i] < 0 {
			out[i] = 0
		}
		assigned += out[i]
	}
	out[0] += total - assigned
	if out[0] < 0 {
		out[0] = 0
	}
	return out
}
