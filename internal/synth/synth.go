// Package synth generates the calibrated synthetic corpus this
// reproduction runs on: WHOIS (CAIDA AS2Org) and PeeringDB snapshots, a
// simulated web universe, APNIC per-AS user-population estimates, and a
// CAIDA AS-Rank ranking — together with the ground truth the evaluation
// harness scores against.
//
// The generator is seeded and fully deterministic. At Scale 1.0 it
// targets the corpus statistics the paper publishes for its July 2024
// snapshots (§5.2): 117,431 WHOIS ASNs in 95,300 organizations; 30,955
// PeeringDB networks in 27,712 organizations; 17,633 non-empty text
// fields of which 2,916 are numeric; 26,225 website fields referencing
// 24,200 unique URLs; roughly 22.5k reachable networks converging on
// ~20.1k final URLs; ~14.5k unique favicons of which 440 are shared by
// more than one final URL; and a 4.21-billion-user APNIC population.
// Named conglomerates, hypergiants, and merger stories (Lumen/Level3,
// Edgecast/Limelight, Sprint/T-Mobile, Claro, Digicel, DE-CIX, …) are
// embedded so every table and figure reports the entities the paper
// reports.
package synth

import (
	"fmt"
	"math/rand"

	"github.com/nu-aqualab/borges/internal/apnic"
	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/asrank"
	"github.com/nu-aqualab/borges/internal/peeringdb"
	"github.com/nu-aqualab/borges/internal/websim"
	"github.com/nu-aqualab/borges/internal/whois"
)

// Config parameterises generation.
type Config struct {
	// Seed drives all pseudo-randomness (default 1).
	Seed int64
	// Scale multiplies the anonymous-population targets; 1.0 is paper
	// scale. Named entities are always embedded in full. Values around
	// 0.05 give fast test corpora.
	Scale float64
}

// Dataset is a complete generated corpus.
type Dataset struct {
	Config Config
	WHOIS  *whois.Snapshot
	PDB    *peeringdb.Snapshot
	Web    *websim.Universe
	APNIC  *apnic.Table
	ASRank *asrank.Ranking
	Truth  *GroundTruth
}

// targets are the paper's corpus statistics at Scale 1.0.
type targets struct {
	whoisASNs, whoisOrgs int
	pdbNets, pdbOrgs     int

	textRecords    int // non-empty notes/aka
	numericRecords int // containing digits
	siblingRecords int // truly reporting extractable siblings
	hardFN, hardFP int

	websiteNets   int // nets with a website field
	duplicateURLs int // nets sharing a URL with another net
	downNets      int // nets whose site is unreachable

	sameBrandCompany  int // shared favicon + same brand label (step 1)
	diffRecoverTotal  int // claro-style recoverable groups (step 2)
	diffUnrecoverable int // DE-CIX-style natural FNs
	frameworkGroups   int // default framework icons
	fpGroups          int // framework icons behind a shared brand label

	pairsP, pairsRR, pairsNA, pairsF int // anonymous merge units

	changedOrgs     int   // orgs whose population changes under Borges
	unchangedOrgs   int   // orgs with users and no change
	totalUsers      int64 // global APNIC population
	changedAS2Org   int64 // Σ largest-prior-group users over changed orgs
	changedMarginal int64 // Σ marginal growth (Borges − AS2Org)

	rankSize int
	dodASNs  int
	iscNets  int
}

func scaled(cfg Config) targets {
	s := cfg.Scale
	m := func(v int) int {
		out := int(float64(v)*s + 0.5)
		if v > 0 && out < 1 {
			out = 1
		}
		return out
	}
	return targets{
		whoisASNs: m(117431), whoisOrgs: m(95300),
		pdbNets: m(30955), pdbOrgs: m(27712),
		textRecords:    m(17633),
		numericRecords: m(2916),
		siblingRecords: m(861), // 849 extracted + 12 missed
		hardFN:         m(12),
		hardFP:         m(5),
		websiteNets:    m(26225),
		duplicateURLs:  m(2025),
		downNets:       m(3702),

		sameBrandCompany:  m(280),
		diffRecoverTotal:  m(38),
		diffUnrecoverable: m(5),
		frameworkGroups:   m(116),
		fpGroups:          m(1),

		pairsP: m(850), pairsRR: m(430), pairsNA: m(260), pairsF: m(60),

		changedOrgs:     m(352),
		unchangedOrgs:   m(25105),
		totalUsers:      int64(float64(4_211_000_000) * s),
		changedAS2Org:   int64(float64(1_060_840_352) * s), // 352 × 3,013,751
		changedMarginal: int64(float64(192_722_464) * s),   // 352 × 547,507

		rankSize: m(10000),
		dodASNs:  m(973),
		iscNets:  m(82),
	}
}

// gen is the generator's working state.
type gen struct {
	cfg Config
	t   targets
	rng *rand.Rand
	ds  *Dataset

	used     map[asnum.ASN]bool
	nextASN  uint32
	nextPDBO int
	nextPDBN int

	hostUsed  map[string]bool
	rankTaken map[int]bool

	// Bookkeeping toward quotas.
	countSibling, countHardFN, countHardFP int
	countNumericNoise, countNonNumeric     int
	countWebsites, countDupURLs, countDown int
	countSameBrand, countDiffRecover       int
	countDiffUnrecover, countFramework     int
	countChanged                           int

	// changedMains/changedSubs accumulate APNIC rows of anonymous
	// changed orgs for final rescaling toward the Table 7 means.
	anonChangedAS2Org, anonChangedMarginal int64

	// named carries bookkeeping shared across build phases.
	named namedState
}

// Generate builds a corpus.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	if cfg.Scale < 0.005 || cfg.Scale > 4 {
		return nil, fmt.Errorf("synth: scale %v out of range [0.005, 4]", cfg.Scale)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	g := &gen{
		cfg: cfg,
		t:   scaled(cfg),
		rng: rand.New(rand.NewSource(cfg.Seed)),
		ds: &Dataset{
			Config: cfg,
			WHOIS:  whois.NewSnapshot("20240701"),
			PDB:    peeringdb.NewSnapshot("20240724"),
			Web:    websim.New(),
			APNIC:  apnic.NewTable("20240701"),
			ASRank: asrank.NewRanking("20240701"),
			Truth:  newGroundTruth(),
		},
		used:      make(map[asnum.ASN]bool),
		nextASN:   200000,
		nextPDBO:  1,
		nextPDBN:  1,
		hostUsed:  make(map[string]bool),
		rankTaken: make(map[int]bool),
	}
	g.buildConglomerates()
	g.buildHypergiants()
	g.buildSpecials()
	g.buildMergeUnits()
	g.buildClassifierCorpus()
	g.buildFill()
	g.buildRanking()
	return g.ds, nil
}

// ---- allocation helpers ----

func (g *gen) alloc() asnum.ASN {
	for {
		a := asnum.ASN(g.nextASN)
		g.nextASN++
		if !a.IsReserved() && !g.used[a] {
			g.used[a] = true
			return a
		}
	}
}

func (g *gen) claim(a asnum.ASN) asnum.ASN {
	if a == 0 || g.used[a] {
		return g.alloc()
	}
	g.used[a] = true
	return a
}

func (g *gen) pdbOrgID() int {
	id := g.nextPDBO
	g.nextPDBO++
	return id
}

func (g *gen) pdbNetID() int {
	id := g.nextPDBN
	g.nextPDBN++
	return id
}

// host returns a unique hostname based on the proposal, appending a
// counter on collision.
func (g *gen) host(proposal string) string {
	h := proposal
	for i := 2; g.hostUsed[h]; i++ {
		h = fmt.Sprintf("%s%d", proposal, i)
	}
	g.hostUsed[h] = true
	return h
}

// rank assigns the closest free rank at or after want (1-based).
func (g *gen) rank(want int) int {
	if want < 1 {
		want = 1
	}
	for g.rankTaken[want] {
		want++
	}
	g.rankTaken[want] = true
	return want
}

// addWHOIS registers an org and its ASNs.
func (g *gen) addWHOIS(orgID, name, country string, asns []asnum.ASN) {
	g.ds.WHOIS.AddOrg(whois.Org{ID: orgID, Name: name, Country: country, Source: rirFor(country)})
	for _, a := range asns {
		g.ds.WHOIS.AddAS(whois.ASRecord{ASN: a, OrgID: orgID, Name: name, Source: rirFor(country)})
	}
}

func rirFor(cc string) string {
	switch cc {
	case "US", "CA":
		return "ARIN"
	case "BR", "AR", "CL", "PE", "CO", "MX", "DO", "EC", "BO", "PY", "UY",
		"GT", "SV", "HN", "NI", "CR", "PA", "JM", "TT", "PR", "HT":
		return "LACNIC"
	case "JP", "KR", "TW", "CN", "HK", "SG", "MY", "TH", "VN", "PH", "ID",
		"IN", "BD", "PK", "LK", "NP", "AU", "NZ", "FJ", "PG":
		return "APNIC"
	case "ZA", "NG", "GH", "KE", "TZ", "UG", "EG", "MA", "TN", "SN", "CI",
		"CM", "AO", "MZ":
		return "AFRINIC"
	default:
		return "RIPE"
	}
}

// addNet registers a PeeringDB network.
func (g *gen) addNet(orgID int, asn asnum.ASN, name, aka, notes, website string) {
	g.ds.PDB.AddNet(peeringdb.Net{
		ID: g.pdbNetID(), OrgID: orgID, ASN: asn,
		Name: name, Aka: aka, Notes: notes, Website: website,
	})
	if notes != "" || aka != "" {
		hasNum := hasDigits(notes) || hasDigits(aka)
		if !hasNum {
			g.countNonNumeric++
		}
	}
	if website != "" {
		g.countWebsites++
	}
}

func hasDigits(s string) bool {
	for _, r := range s {
		if r >= '0' && r <= '9' {
			return true
		}
	}
	return false
}

// users adds an APNIC row.
func (g *gen) users(a asnum.ASN, cc string, n int64) {
	if n <= 0 {
		return
	}
	g.ds.APNIC.Add(apnic.Record{ASN: a, CC: cc, Users: n, PctOfCountry: 0})
}

// splitUsers distributes total across k parts deterministically with
// mild variation, parts summing exactly to total.
func (g *gen) splitUsers(total int64, k int) []int64 {
	if k <= 0 {
		return nil
	}
	out := make([]int64, k)
	base := total / int64(k)
	var assigned int64
	for i := 0; i < k; i++ {
		jitter := int64(0)
		if base > 10 {
			jitter = int64(g.rng.Float64()*0.4-0.2) * (base / 10) * 2
		}
		out[i] = base + jitter
		if out[i] < 0 {
			out[i] = 0
		}
		assigned += out[i]
	}
	out[0] += total - assigned
	if out[0] < 0 {
		out[0] = 0
	}
	return out
}
