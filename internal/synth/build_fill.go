package synth

import (
	"fmt"
	"sort"
	"strings"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/asrank"
	"github.com/nu-aqualab/borges/internal/simllm"
)

// company-name fragments for anonymous entities. The index suffix keeps
// every brand label unique, so unrelated companies never collide in the
// same-brand-label classifier rule by accident.
var (
	nameHeads = []string{
		"netwave", "telefibra", "gigalink", "alfanet", "novacom", "skyband",
		"terradata", "luzline", "vistapath", "rapidmesh", "metroport",
		"australnet", "andeslink", "deltacom", "orionband", "zenitnet",
	}
	siteTLDs = []string{"com", "net", "org", "io", "co", "com.br", "co.uk", "de", "fr", "es"}
)

// title upper-cases the first byte (ASCII company names only).
func title(s string) string {
	if s == "" {
		return s
	}
	if s[0] >= 'a' && s[0] <= 'z' {
		return string(s[0]-'a'+'A') + s[1:]
	}
	return s
}

func (g *gen) company(idx int) string {
	return fmt.Sprintf("%s%d", nameHeads[idx%len(nameHeads)], idx)
}

// siteIcon returns a fresh singleton favicon identity until the unique-
// favicon quota (≈14,076 at full scale) is exhausted, then "".
func (g *gen) siteIcon(host string) string {
	if g.named.uniqueIcons >= g.scaledSingletonIcons() {
		return ""
	}
	g.named.uniqueIcons++
	return "site:" + host
}

func (g *gen) scaledSingletonIcons() int {
	v := int(float64(14076)*g.cfg.Scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// anonUser defers APNIC assignment for an anonymous changed org until
// the named budgets are known.
type anonUser struct {
	mainASN, subASN asnum.ASN
	ccMain, ccSub   string
	wMain, wSub     float64
}

// buildMergeUnits creates the anonymous two-organization merge units —
// pairs of WHOIS organizations under one true owner, discoverable
// through exactly one Borges feature. They provide the bulk of the
// Table 6 organization-count reduction and the Figure 8 transit-rank
// gains.
func (g *gen) buildMergeUnits() {
	var signals []SignalMask
	for i := 0; i < g.t.pairsP; i++ {
		signals = append(signals, SigOIDP)
	}
	for i := 0; i < g.t.pairsRR; i++ {
		signals = append(signals, SigRR)
	}
	for i := 0; i < g.t.pairsNA; i++ {
		signals = append(signals, SigNotesAka)
	}
	for i := 0; i < g.t.pairsF; i++ {
		signals = append(signals, SigFavicon)
	}
	g.rng.Shuffle(len(signals), func(i, j int) { signals[i], signals[j] = signals[j], signals[i] })

	// Rank tiers (Figure 8): fill the top-100 slots the named entities
	// left open with high-gain units, ranks 101..1000 with gain ≈1,
	// and scatter the rest deeper.
	tier1Bound := g.scaleCount(100)
	tier2Bound := g.scaleCount(1000)
	namedInTier1 := 0
	for _, p := range g.named.pendingRanks {
		if p.want <= tier1Bound {
			namedInTier1++
		}
	}
	tier1Quota := tier1Bound - namedInTier1
	if tier1Quota < 0 {
		tier1Quota = 0
	}
	tier2Quota := tier2Bound - tier1Bound

	anonChangedQuota := g.t.changedOrgs - g.named.namedChanged
	if anonChangedQuota < 0 {
		anonChangedQuota = 0
	}
	// Only a bounded number of anonymous units expand an organization's
	// country footprint (the paper reports 101 growing organizations in
	// total, most of them named conglomerates).
	diffCCQuota := g.scaleCount(62)
	diffCC := 0
	var anon []anonUser

	for idx, sig := range signals {
		nm := g.company(10000 + idx)
		// Secondary organization size by rank tier.
		secSize := 1
		rankWant := 0
		switch {
		case idx < tier1Quota:
			secSize = 3 + g.rng.Intn(6)
			rankWant = 1
		case idx < tier1Quota+tier2Quota:
			secSize = 1 + g.rng.Intn(2)
			rankWant = tier1Bound + 1
		default:
			if g.rng.Intn(3) == 0 {
				rankWant = tier2Bound + 1
			}
		}

		mainASN := g.alloc()
		mainOID := fmt.Sprintf("ORG-UNIT-%d-A", idx)
		g.addWHOIS(mainOID, title(nm), "US", []asnum.ASN{mainASN})

		secASNs := make([]asnum.ASN, 0, secSize)
		for k := 0; k < secSize; k++ {
			secASNs = append(secASNs, g.alloc())
		}
		secOID := fmt.Sprintf("ORG-UNIT-%d-B", idx)
		ccSub := "US"
		if diffCC < diffCCQuota && idx%5 == 0 {
			ccSub = countryPool[(idx*3+1)%len(countryPool)]
			diffCC++
		}
		g.addWHOIS(secOID, title(nm)+" "+ccSub, ccSub, secASNs)

		org := &TrueOrg{
			Key: fmt.Sprintf("unit:%d", idx), Name: title(nm),
			ASNs:      append([]asnum.ASN{mainASN}, secASNs...),
			WHOISOrgs: []string{mainOID, secOID},
			Countries: []string{"US", ccSub},
		}
		g.ds.Truth.addOrg(org)

		g.wireUnit(idx, nm, sig, mainASN, secASNs[0])

		if rankWant > 0 {
			g.named.pendingRanks = append(g.named.pendingRanks, pendingRank{mainASN, rankWant})
		}
		if len(anon) < anonChangedQuota {
			anon = append(anon, anonUser{
				mainASN: mainASN, subASN: secASNs[0],
				ccMain: "US", ccSub: ccSub,
				wMain: 0.3 + g.rng.Float64(), wSub: 0.3 + g.rng.Float64(),
			})
		}
		g.maybeFlush()
	}

	// Assign the anonymous changed-population budgets exactly.
	mainBudget := g.t.changedAS2Org - g.named.namedAS2Org
	subBudget := g.t.changedMarginal - g.named.namedMarginal
	if mainBudget < 0 {
		mainBudget = 0
	}
	if subBudget < 0 {
		subBudget = 0
	}
	var wm, ws float64
	for _, a := range anon {
		wm += a.wMain
		ws += a.wSub
	}
	var gaveMain, gaveSub int64
	for i, a := range anon {
		var um, us int64
		if wm > 0 {
			um = int64(float64(mainBudget) * a.wMain / wm)
		}
		if ws > 0 {
			us = int64(float64(subBudget) * a.wSub / ws)
		}
		if i == len(anon)-1 { // absorb rounding in the last unit
			um = mainBudget - gaveMain
			us = subBudget - gaveSub
		}
		gaveMain += um
		gaveSub += us
		g.users(a.mainASN, a.ccMain, um)
		g.users(a.subASN, a.ccSub, us)
	}
	g.countChanged = g.named.namedChanged + len(anon)
}

// scaleCount scales a rank bound.
func (g *gen) scaleCount(v int) int {
	out := int(float64(v)*g.cfg.Scale + 0.5)
	if out < 1 {
		out = 1
	}
	return out
}

// wireUnit wires the single discovery signal of one merge unit.
func (g *gen) wireUnit(idx int, nm string, sig SignalMask, mainASN, secASN asnum.ASN) {
	switch sig {
	case SigOIDP:
		// One PeeringDB organization spans both WHOIS organizations.
		p := g.pdbOrgID()
		g.ds.PDB.AddOrg(orgFor(p, title(nm), ""))
		website := ""
		if g.rng.Intn(2) == 0 {
			h := g.host("www." + nm + ".net")
			g.ds.Web.AddSite(h, g.siteIcon(h))
			website = "https://" + h + "/"
		}
		g.addNet(p, mainASN, title(nm), "", "", website)
		g.addNet(p, secASN, title(nm)+" II", "", "", "")
	case SigRR:
		// Separate PDB orgs; the acquired brand redirects to the main
		// site (Fig. 5b).
		mainHost := g.host("www." + nm + ".com")
		g.ds.Web.AddSite(mainHost, g.siteIcon(mainHost))
		mainURL := "https://" + mainHost + "/"
		secHost := g.host("www." + nm + "-legacy.com")
		if g.rng.Intn(3) == 0 {
			g.ds.Web.MetaRefreshHost(secHost, mainURL)
		} else {
			g.ds.Web.RedirectHost(secHost, mainURL)
		}
		p1, p2 := g.pdbOrgID(), g.pdbOrgID()
		g.ds.PDB.AddOrg(orgFor(p1, title(nm), ""))
		g.ds.PDB.AddOrg(orgFor(p2, title(nm)+" Legacy", ""))
		g.addNet(p1, mainASN, title(nm), "", "", mainURL)
		g.addNet(p2, secASN, title(nm)+" Legacy", "", "", "https://"+secHost+"/")
	case SigNotesAka:
		// The main network's notes (or aka) report the sibling.
		p1, p2 := g.pdbOrgID(), g.pdbOrgID()
		g.ds.PDB.AddOrg(orgFor(p1, title(nm), ""))
		g.ds.PDB.AddOrg(orgFor(p2, title(nm)+" II", ""))
		aka, notes := "", ""
		if g.rng.Intn(3) == 0 {
			aka = siblingAka([]asnum.ASN{secASN}, g.rng)
		} else {
			notes = siblingNotes([]asnum.ASN{secASN}, g.rng)
		}
		g.addNet(p1, mainASN, title(nm), aka, notes, "")
		g.addNet(p2, secASN, title(nm)+" II", "", "", "")
		g.ds.Truth.NERSiblings[mainASN] = []asnum.ASN{secASN}
		g.ds.Truth.NERKind[mainASN] = RecordSiblingText
		g.countSibling++
	case SigFavicon:
		// Two distinct final URLs share one brand icon.
		icon := fmt.Sprintf("site:funit%d", idx)
		g.ds.Truth.registerIcon(icon, IconCompany)
		var h1, h2 string
		if idx%2 == 0 {
			// Same brand label across TLDs (step-1 territory).
			h1 = g.host("www." + nm + ".com")
			h2 = g.host("www." + nm + ".net")
			g.countSameBrand++
		} else {
			// Claro-style label variation (step-2 territory).
			h1 = g.host("www." + nm + ".com")
			h2 = g.host("www." + nm + "br.com")
			g.countDiffRecover++
		}
		g.ds.Web.AddSite(h1, icon)
		g.ds.Web.AddSite(h2, icon)
		p1, p2 := g.pdbOrgID(), g.pdbOrgID()
		g.ds.PDB.AddOrg(orgFor(p1, title(nm), ""))
		g.ds.PDB.AddOrg(orgFor(p2, title(nm)+" BR", ""))
		g.addNet(p1, mainASN, title(nm), "", "", "https://"+h1+"/")
		g.addNet(p2, secASN, title(nm)+" BR", "", "", "https://"+h2+"/")
	}
}

// buildClassifierCorpus tops the favicon-group population up to the
// §5.3 composition: ~280 same-brand company groups, ~38 recoverable
// different-label company groups, ~5 unrecoverable ones, ~116 framework
// groups, and the single step-1 false positive.
func (g *gen) buildClassifierCorpus() {
	idx := 20000

	// Same-brand company groups (step 1).
	for g.countSameBrand < g.t.sameBrandCompany {
		nm := g.company(idx)
		idx++
		size := 2 + g.rng.Intn(4)
		icon := "site:sb-" + nm
		g.ds.Truth.registerIcon(icon, IconCompany)
		g.sameOrgSites(nm, icon, sameBrandHosts(nm, size, g))
		g.countSameBrand++
		g.maybeFlush()
	}
	// Recoverable different-label groups (step 2, Claro-style).
	for g.countDiffRecover < g.t.diffRecoverTotal {
		nm := g.company(idx)
		idx++
		icon := "site:dr-" + nm
		g.ds.Truth.registerIcon(icon, IconCompany)
		hosts := []string{
			g.host("www." + nm + ".com"),
			g.host("www." + nm + "cl.com"),
		}
		if g.rng.Intn(2) == 0 {
			hosts = append(hosts, g.host("www."+nm+"mx.com"))
		}
		g.sameOrgSites(nm, icon, hosts)
		g.countDiffRecover++
		g.maybeFlush()
	}
	// Unrecoverable company groups (DE-CIX style natural FNs).
	for g.countDiffUnrecover < g.t.diffUnrecoverable {
		nmA, nmB := g.company(idx), g.company(idx+1)
		idx += 2
		icon := "site:du-" + nmA
		g.ds.Truth.registerIcon(icon, IconCompany)
		g.sameOrgSites(nmA, icon, []string{
			g.host("www." + nmA + ".com"),
			g.host("www." + nmB + ".net"),
		})
		g.countDiffUnrecover++
		g.maybeFlush()
	}
	// Framework default-icon groups: unrelated sites, shared icon.
	fwKeys := make([]string, 0, len(simllm.FrameworkNames))
	for k := range simllm.FrameworkNames {
		fwKeys = append(fwKeys, k)
	}
	sort.Strings(fwKeys)
	for g.countFramework < g.t.frameworkGroups {
		fw := fwKeys[g.countFramework%len(fwKeys)]
		variant := g.countFramework / len(fwKeys) % (simllm.FrameworkVariants - 1)
		icon := simllm.FrameworkVariantIconID(fw, variant)
		g.ds.Truth.registerIcon(icon, IconFramework)
		size := 3 + g.rng.Intn(3)
		for s := 0; s < size; s++ {
			nm := g.company(idx)
			idx++
			h := g.host("www." + nm + "." + siteTLDs[g.rng.Intn(len(siteTLDs))])
			g.ds.Web.AddSite(h, icon)
			g.singletonNet(nm, "", "", "https://"+h+"/")
		}
		g.countFramework++
		g.maybeFlush()
	}
	// The step-1 false positive: a white-label telecom portal whose
	// deployments share both the (framework) icon and a brand label.
	for i := 0; i < g.t.fpGroups; i++ {
		icon := simllm.FrameworkVariantIconID("ixcsoft", simllm.FrameworkVariants-1)
		g.ds.Truth.registerIcon(icon, IconFramework)
		nm := g.company(idx)
		idx++
		h1 := g.host("www." + nm + ".com.br")
		h2 := g.host("www." + nm + ".net.br")
		g.ds.Web.AddSite(h1, icon)
		g.ds.Web.AddSite(h2, icon)
		g.singletonNet(nm+"-a", "", "", "https://"+h1+"/")
		g.singletonNet(nm+"-b", "", "", "https://"+h2+"/")
		g.maybeFlush()
	}
}

func sameBrandHosts(nm string, size int, g *gen) []string {
	hosts := make([]string, 0, size)
	for s := 0; s < size; s++ {
		hosts = append(hosts, g.host("www."+nm+"."+siteTLDs[s%len(siteTLDs)]))
	}
	return hosts
}

// sameOrgSites creates one true org whose networks serve the given
// hosts with a shared favicon.
func (g *gen) sameOrgSites(nm, icon string, hosts []string) {
	asns := make([]asnum.ASN, 0, len(hosts))
	for range hosts {
		asns = append(asns, g.alloc())
	}
	oid := "ORG-GRP-" + strings.ToUpper(nm)
	cc := countryPool[len(nm)%len(countryPool)]
	g.addWHOIS(oid, title(nm), cc, asns)
	g.ds.Truth.addOrg(&TrueOrg{Key: "grp:" + nm, Name: title(nm),
		ASNs: asns, WHOISOrgs: []string{oid}, Countries: []string{cc}})
	p := g.pdbOrgID()
	g.ds.PDB.AddOrg(orgFor(p, title(nm), ""))
	for i, h := range hosts {
		g.ds.Web.AddSite(h, icon)
		g.addNet(p, asns[i], fmt.Sprintf("%s-%d", title(nm), i), "", "", "https://"+h+"/")
	}
}

// singletonNet creates a standalone true org with one WHOIS org, one
// PDB org, and one network.
func (g *gen) singletonNet(nm, aka, notes, website string) asnum.ASN {
	a := g.alloc()
	oid := "ORG-S-" + strings.ToUpper(nm)
	cc := countryPool[int(a)%len(countryPool)]
	g.addWHOIS(oid, title(nm), cc, []asnum.ASN{a})
	g.ds.Truth.addOrg(&TrueOrg{Key: "s:" + nm, Name: title(nm),
		ASNs: []asnum.ASN{a}, WHOISOrgs: []string{oid}, Countries: []string{cc}})
	p := g.pdbOrgID()
	g.ds.PDB.AddOrg(orgFor(p, title(nm), ""))
	g.addNet(p, a, title(nm), aka, notes, website)
	g.named.plainOrgs = append(g.named.plainOrgs, plainOrg{asn: a, cc: cc})
	return a
}

// maybeSite creates a fresh website (honouring the unreachable quota)
// while the website-bearing-net quota is unfilled, else returns "".
func (g *gen) maybeSite(nm string, idx int) string {
	if g.countWebsites >= g.t.websiteNets {
		return ""
	}
	h := g.host("www." + nm + "." + siteTLDs[idx%len(siteTLDs)])
	if g.countDown < g.t.downNets {
		// Unreachable sites never surface a favicon, so they do not
		// consume the unique-icon quota.
		g.ds.Web.AddSite(h, "")
		g.ds.Web.SetDown(h, true)
		g.countDown++
	} else {
		g.ds.Web.AddSite(h, g.siteIcon(h))
	}
	return "https://" + h + "/"
}

// akaNoise renders digit-bearing aka text that is not an ASN claim.
func (g *gen) akaNoise() string {
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("since %d", 1950+g.rng.Intn(70))
	case 1:
		return fmt.Sprintf("est. %d", 1950+g.rng.Intn(70))
	case 2:
		return fmt.Sprintf("Canal %d", 1+g.rng.Intn(200))
	default:
		return fmt.Sprintf("Grupo %d", 1+g.rng.Intn(99))
	}
}

// buildFill tops every corpus quota up: URL duplicates, the NER text
// population, websites (including unreachable ones), PeeringDB nets,
// WHOIS organizations with the calibrated size tail, and the APNIC
// populations of unchanged organizations.
func (g *gen) buildFill() {
	idx := 40000

	// Platform-pointing networks: small operators without their own
	// sites report mainstream communication platforms in the website
	// field (§4.3.2). Without the Appendix D blocklists these unrelated
	// networks would fuse into spurious mega-organizations.
	platforms := []struct{ host, icon string }{
		{"www.facebook.com", "brand:facebook"},
		{"github.com", "site:platform-github"},
		{"www.linkedin.com", "site:platform-linkedin"},
		{"discord.com", "site:platform-discord"},
	}
	for _, p := range platforms {
		g.hostUsed[p.host] = true
		g.ds.Web.AddSite(p.host, p.icon)
	}
	for i := 0; i < g.scaleCount(100); i++ {
		p := platforms[i%len(platforms)]
		nm := g.company(idx)
		idx++
		g.singletonNet(nm, "", "", "https://"+p.host+"/")
		g.maybeFlush()
	}

	// URL-duplicate pairs: two nets of one org report one website.
	for g.countDupURLs < g.t.duplicateURLs {
		nm := g.company(idx)
		idx++
		a1, a2 := g.alloc(), g.alloc()
		oid := "ORG-DUP-" + strings.ToUpper(nm)
		cc := countryPool[idx%len(countryPool)]
		g.addWHOIS(oid, title(nm), cc, []asnum.ASN{a1, a2})
		g.ds.Truth.addOrg(&TrueOrg{Key: "dup:" + nm, Name: title(nm),
			ASNs: []asnum.ASN{a1, a2}, WHOISOrgs: []string{oid}, Countries: []string{cc}})
		h := g.host("www." + nm + ".net")
		g.ds.Web.AddSite(h, g.siteIcon(h))
		p := g.pdbOrgID()
		g.ds.PDB.AddOrg(orgFor(p, title(nm), ""))
		g.addNet(p, a1, title(nm), "", "", "https://"+h+"/")
		g.addNet(p, a2, title(nm)+" II", "", "", "https://"+h+"/")
		g.countDupURLs++
		g.maybeFlush()
	}

	// Same-organization sibling-text records (no merge effect; they
	// populate the Table 3 N&A counts and the Table 4 true positives).
	for g.countSibling < g.t.siblingRecords-g.t.hardFN {
		nm := g.company(idx)
		idx++
		nSib := 1
		switch r := g.rng.Intn(100); {
		case r >= 98:
			nSib = 3
		case r >= 90:
			nSib = 2
		}
		asns := make([]asnum.ASN, nSib+1)
		for i := range asns {
			asns[i] = g.alloc()
		}
		oid := "ORG-SIB-" + strings.ToUpper(nm)
		cc := countryPool[idx%len(countryPool)]
		g.addWHOIS(oid, title(nm), cc, asns)
		g.ds.Truth.addOrg(&TrueOrg{Key: "sib:" + nm, Name: title(nm),
			ASNs: asns, WHOISOrgs: []string{oid}, Countries: []string{cc}})
		p := g.pdbOrgID()
		g.ds.PDB.AddOrg(orgFor(p, title(nm), ""))
		sibs := asns[1:]
		aka, notes := "", ""
		switch r := g.rng.Intn(100); {
		case r < 60:
			notes = siblingNotes(sibs, g.rng)
		case r < 85:
			aka = siblingAka(sibs, g.rng)
		default:
			notes = siblingNotes(sibs[:1], g.rng)
			aka = siblingAka(sibs, g.rng)
		}
		g.addNet(p, asns[0], title(nm), aka, notes, g.maybeSite(nm, idx))
		g.ds.Truth.NERSiblings[asns[0]] = append([]asnum.ASN(nil), sibs...)
		g.ds.Truth.NERKind[asns[0]] = RecordSiblingText
		g.countSibling++
		g.maybeFlush()
	}

	// Hard false negatives: true siblings phrased as bare numbers.
	for g.countHardFN < g.t.hardFN {
		nm := g.company(idx)
		idx++
		a1, a2 := g.alloc(), g.alloc()
		oid := "ORG-HFN-" + strings.ToUpper(nm)
		g.addWHOIS(oid, title(nm), "US", []asnum.ASN{a1, a2})
		g.ds.Truth.addOrg(&TrueOrg{Key: "hfn:" + nm, Name: title(nm),
			ASNs: []asnum.ASN{a1, a2}, WHOISOrgs: []string{oid}, Countries: []string{"US"}})
		p := g.pdbOrgID()
		g.ds.PDB.AddOrg(orgFor(p, title(nm), ""))
		g.addNet(p, a1, title(nm), "", hardFNNotes(a2, g.rng), "")
		g.ds.Truth.NERSiblings[a1] = []asnum.ASN{a2}
		g.ds.Truth.NERKind[a1] = RecordHardFN
		g.countHardFN++
		g.maybeFlush()
	}

	// Hard false positives: explicit-but-wrong sibling claims.
	for g.countHardFP < g.t.hardFP {
		nm := g.company(idx)
		idx++
		victim := g.singletonNet(nm+"-victim", "", "", "")
		claimer := g.alloc()
		oid := "ORG-HFP-" + strings.ToUpper(nm)
		g.addWHOIS(oid, title(nm), "US", []asnum.ASN{claimer})
		g.ds.Truth.addOrg(&TrueOrg{Key: "hfp:" + nm, Name: title(nm),
			ASNs: []asnum.ASN{claimer}, WHOISOrgs: []string{oid}, Countries: []string{"US"}})
		p := g.pdbOrgID()
		g.ds.PDB.AddOrg(orgFor(p, title(nm), ""))
		g.addNet(p, claimer, title(nm), "", hardFPNotes(victim, g.rng), "")
		g.ds.Truth.NERKind[claimer] = RecordHardFP
		g.countHardFP++
		g.maybeFlush()
	}

	// Numeric noise records.
	numericSoFar := func() int {
		return g.countSibling + g.countHardFN + g.countHardFP + g.countNumericNoise
	}
	for numericSoFar() < g.t.numericRecords {
		nm := g.company(idx)
		idx++
		aka, notes := "", ""
		switch r := g.rng.Intn(100); {
		case r < 70:
			notes = noiseNotes(g.rng)
		case r < 95:
			aka = g.akaNoise()
		default:
			notes = noiseNotes(g.rng)
			aka = g.akaNoise()
		}
		a := g.singletonNet(nm, aka, notes, g.maybeSite(nm, idx))
		g.ds.Truth.NERKind[a] = RecordNoiseText
		g.countNumericNoise++
		g.maybeFlush()
	}

	// Non-numeric text records.
	for g.countNonNumeric < g.t.textRecords-g.t.numericRecords {
		nm := g.company(idx)
		idx++
		a := g.singletonNet(nm, "", nonNumericText(g.rng), g.maybeSite(nm, idx))
		g.ds.Truth.NERKind[a] = RecordNonNumeric
		g.maybeFlush()
	}

	// Website fill, including the unreachable share.
	for g.countWebsites < g.t.websiteNets {
		nm := g.company(idx)
		idx++
		h := g.host("www." + nm + "." + siteTLDs[idx%len(siteTLDs)])
		if g.countDown < g.t.downNets {
			g.ds.Web.AddSite(h, "")
			g.ds.Web.SetDown(h, true)
			g.countDown++
		} else {
			g.ds.Web.AddSite(h, g.siteIcon(h))
		}
		g.singletonNet(nm, "", "", "https://"+h+"/")
		g.maybeFlush()
	}

	// PeeringDB net fill: plain networks.
	for g.numNets() < g.t.pdbNets {
		nm := g.company(idx)
		idx++
		g.singletonNet(nm, "", "", "")
		g.maybeFlush()
	}

	// WHOIS fill: multi-AS filler organizations consume the remaining
	// (ASNs − orgs) surplus, then singletons pad the org count.
	remASNs := g.t.whoisASNs - g.cumWHOISASNs
	remOrgs := g.t.whoisOrgs - g.cumWHOISOrgs
	extras := remASNs - remOrgs
	for extras > 0 && remOrgs > 1 {
		size := 2
		for g.rng.Float64() < 0.45 && size < 50 {
			size += 1 + g.rng.Intn(3)
		}
		if size-1 > extras {
			size = extras + 1
		}
		nm := g.company(idx)
		idx++
		asns := make([]asnum.ASN, size)
		for i := range asns {
			asns[i] = g.alloc()
		}
		cc := countryPool[idx%len(countryPool)]
		oid := "ORG-M-" + strings.ToUpper(nm)
		g.addWHOIS(oid, title(nm), cc, asns)
		g.ds.Truth.addOrg(&TrueOrg{Key: "m:" + nm, Name: title(nm),
			ASNs: asns, WHOISOrgs: []string{oid}, Countries: []string{cc}})
		g.named.plainOrgs = append(g.named.plainOrgs, plainOrg{asn: asns[0], cc: cc})
		extras -= size - 1
		remOrgs--
		g.maybeFlush()
	}
	for g.cumWHOISOrgs < g.t.whoisOrgs {
		nm := fmt.Sprintf("tail%d", idx)
		idx++
		a := g.alloc()
		cc := countryPool[int(a)%len(countryPool)]
		oid := "ORG-T-" + strings.ToUpper(nm)
		g.addWHOIS(oid, title(nm), cc, []asnum.ASN{a})
		g.ds.Truth.addOrg(&TrueOrg{Key: "t:" + nm, Name: title(nm),
			ASNs: []asnum.ASN{a}, WHOISOrgs: []string{oid}, Countries: []string{cc}})
		g.named.plainOrgs = append(g.named.plainOrgs, plainOrg{asn: a, cc: cc})
		g.maybeFlush()
	}

	g.fillUnchangedUsers()
}

// fillUnchangedUsers distributes the remaining global population over
// unchanged organizations so that the Table 7 means reproduce.
func (g *gen) fillUnchangedUsers() {
	quota := g.t.unchangedOrgs
	if quota > len(g.named.plainOrgs) {
		quota = len(g.named.plainOrgs)
	}
	actualChanged := g.t.changedAS2Org + g.t.changedMarginal
	budget := g.t.totalUsers - actualChanged
	if budget < 0 || quota == 0 {
		return
	}
	weights := make([]float64, quota)
	var sum float64
	for i := range weights {
		// Heavy tail: mostly small eyeball counts, occasional large.
		w := 0.1 + g.rng.Float64()
		if g.rng.Intn(20) == 0 {
			w *= 25
		}
		weights[i] = w
		sum += w
	}
	var given int64
	for i := 0; i < quota; i++ {
		var u int64
		if i == quota-1 {
			u = budget - given
		} else {
			u = int64(float64(budget) * weights[i] / sum)
		}
		given += u
		g.users(g.named.plainOrgs[i].asn, g.named.plainOrgs[i].cc, u)
		g.maybeFlush()
	}
}

// buildRanking materialises AS-Rank: named wants first, then unit
// tiers, then unranked singletons pad to the ranking size. It walks
// the retained cross-chunk ASN list — not the live snapshot, which in
// streaming mode holds only the current chunk — sorted to match what
// WHOIS.ASNs() returns on the fully assembled dataset.
func (g *gen) buildRanking() {
	ranked := make(map[asnum.ASN]bool)
	for _, p := range g.named.pendingRanks {
		if ranked[p.asn] {
			continue
		}
		r := g.rank(p.want)
		cone := g.t.whoisASNs / (r + 9)
		if cone < 1 {
			cone = 1
		}
		if err := g.ds.ASRank.Add(asrank.Entry{Rank: r, ASN: p.asn, ConeSize: cone}); err == nil {
			ranked[p.asn] = true
			g.cumRank++
			g.maybeFlush()
		}
	}
	asnum.Sort(g.allWHOIS)
	for _, a := range g.allWHOIS {
		if g.cumRank >= g.t.rankSize {
			break
		}
		if ranked[a] {
			continue
		}
		r := g.rank(1)
		cone := g.t.whoisASNs / (r + 9)
		if cone < 1 {
			cone = 1
		}
		if err := g.ds.ASRank.Add(asrank.Entry{Rank: r, ASN: a, ConeSize: cone}); err == nil {
			ranked[a] = true
			g.cumRank++
			g.maybeFlush()
		}
	}
}
