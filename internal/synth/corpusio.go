package synth

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"github.com/nu-aqualab/borges/internal/apnic"
	"github.com/nu-aqualab/borges/internal/asrank"
	"github.com/nu-aqualab/borges/internal/websim"
	"github.com/nu-aqualab/borges/internal/whois"
)

// CorpusStats summarizes a streamed corpus write.
type CorpusStats struct {
	WHOISASNs    int
	WHOISOrgs    int
	PDBNets      int
	PDBOrgs      int
	APNICRecords int
	RankedASNs   int
	Sites        int
	Chunks       int
}

// WriteCorpusStream generates the corpus for cfg with GenerateStream
// and writes the five standard corpus files (as2org.jsonl,
// peeringdb.json, apnic.csv, asrank.csv, web.jsonl) into dir without
// ever materializing the full dataset: each chunk is appended to the
// output files and discarded, so peak memory tracks the chunk size,
// not the corpus size. Record classes that must stay contiguous in
// the final layout (WHOIS AS records after all organizations, and the
// PeeringDB net table after the org table) are spooled to temp files
// in dir and stitched in at the end. The streamed files parse to
// snapshots identical to what Generate + the buffered writers
// produce; chunkUnits <= 0 degrades to a single chunk.
func WriteCorpusStream(dir string, cfg Config, chunkUnits int) (CorpusStats, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return CorpusStats{}, fmt.Errorf("synth: corpus dir: %w", err)
	}
	c, err := newCorpusStream(dir)
	if err != nil {
		return CorpusStats{}, err
	}
	defer c.cleanup()
	if err := GenerateStream(cfg, chunkUnits, c.consume); err != nil {
		return CorpusStats{}, err
	}
	if err := c.finish(); err != nil {
		return CorpusStats{}, err
	}
	return c.stats, nil
}

// corpusStream holds the open output files of one streamed corpus
// write: five destination files plus two spools for the record
// classes whose canonical position is after content that is still
// streaming in.
type corpusStream struct {
	dir                               string
	as2org, pdb, apnicF, asrankF, web *os.File
	asnSpool, netSpool                *os.File
	wroteOrg, wroteNet                bool
	siteHosts                         map[uint64]struct{}
	date                              string
	stats                             CorpusStats
	done                              bool
}

func newCorpusStream(dir string) (*corpusStream, error) {
	c := &corpusStream{dir: dir, siteHosts: make(map[uint64]struct{})}
	var firstErr error
	try := func(name string) *os.File {
		if firstErr != nil {
			return nil
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			firstErr = err
		}
		return f
	}
	c.as2org = try("as2org.jsonl")
	c.pdb = try("peeringdb.json")
	c.apnicF = try("apnic.csv")
	c.asrankF = try("asrank.csv")
	c.web = try("web.jsonl")
	c.asnSpool = try(".as2org.asn.spool")
	c.netSpool = try(".peeringdb.net.spool")
	if firstErr != nil {
		c.cleanup()
		return nil, fmt.Errorf("synth: corpus stream: %w", firstErr)
	}
	// Headers and prologues are written once, before the first chunk.
	if err := apnic.WriteHeader(c.apnicF); err != nil {
		c.cleanup()
		return nil, err
	}
	if err := asrank.WriteHeader(c.asrankF); err != nil {
		c.cleanup()
		return nil, err
	}
	if _, err := c.pdb.WriteString(`{"org":{"data":[`); err != nil {
		c.cleanup()
		return nil, fmt.Errorf("synth: corpus stream: %w", err)
	}
	return c, nil
}

// consume appends one generated chunk to the corpus files.
func (c *corpusStream) consume(ds *Dataset) error {
	c.stats.Chunks++
	if c.date == "" {
		c.date = ds.PDB.Date
	}
	if err := whois.WriteOrgs(c.as2org, ds.WHOIS); err != nil {
		return err
	}
	if err := whois.WriteASNs(c.asnSpool, ds.WHOIS); err != nil {
		return err
	}
	for _, o := range ds.PDB.Orgs() {
		if err := writeJSONElem(c.pdb, o, &c.wroteOrg); err != nil {
			return err
		}
	}
	for _, n := range ds.PDB.Nets() {
		if err := writeJSONElem(c.netSpool, n, &c.wroteNet); err != nil {
			return err
		}
	}
	if err := apnic.WriteRows(c.apnicF, ds.APNIC); err != nil {
		return err
	}
	if err := asrank.WriteRows(c.asrankF, ds.ASRank); err != nil {
		return err
	}
	if err := websim.WriteManifest(c.web, ds.Web); err != nil {
		return err
	}
	c.stats.WHOISASNs += ds.WHOIS.NumASNs()
	c.stats.WHOISOrgs += ds.WHOIS.NumOrgs()
	c.stats.PDBNets += ds.PDB.NumNets()
	c.stats.PDBOrgs += ds.PDB.NumOrgs()
	c.stats.APNICRecords += ds.APNIC.Len()
	c.stats.RankedASNs += ds.ASRank.Len()
	// A host can recur across chunks when a later generation phase
	// enriches a site created earlier; AddManifest merges the content
	// on read, so only the counter needs deduplication. An FNV-64a
	// hash per host (8 bytes) is the writer's only cross-chunk state.
	for _, h := range ds.Web.Hosts() {
		k := hashHost(h)
		if _, seen := c.siteHosts[k]; !seen {
			c.siteHosts[k] = struct{}{}
			c.stats.Sites++
		}
	}
	return nil
}

// hashHost is FNV-64a.
func hashHost(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// writeJSONElem appends one comma-separated JSON array element.
func writeJSONElem(w io.Writer, v any, wroteAny *bool) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("synth: corpus stream: %w", err)
	}
	if *wroteAny {
		if _, err := w.Write([]byte{','}); err != nil {
			return fmt.Errorf("synth: corpus stream: %w", err)
		}
	}
	*wroteAny = true
	if _, err := w.Write(blob); err != nil {
		return fmt.Errorf("synth: corpus stream: %w", err)
	}
	return nil
}

// finish stitches the spooled record classes into their canonical
// positions, closes everything, and removes the spools.
func (c *corpusStream) finish() error {
	appendSpool := func(dst *os.File, spool *os.File) error {
		if _, err := spool.Seek(0, io.SeekStart); err != nil {
			return err
		}
		_, err := io.Copy(dst, spool)
		return err
	}
	if err := appendSpool(c.as2org, c.asnSpool); err != nil {
		return fmt.Errorf("synth: corpus stream: stitch AS records: %w", err)
	}
	if _, err := c.pdb.WriteString(`]},"net":{"data":[`); err != nil {
		return fmt.Errorf("synth: corpus stream: %w", err)
	}
	if err := appendSpool(c.pdb, c.netSpool); err != nil {
		return fmt.Errorf("synth: corpus stream: stitch nets: %w", err)
	}
	if _, err := c.pdb.WriteString(`]},"meta":{"generated":` + strconv.Quote(c.date) + "}}\n"); err != nil {
		return fmt.Errorf("synth: corpus stream: %w", err)
	}
	c.done = true
	for _, f := range []*os.File{c.as2org, c.pdb, c.apnicF, c.asrankF, c.web, c.asnSpool, c.netSpool} {
		if err := f.Close(); err != nil {
			return fmt.Errorf("synth: corpus stream: %w", err)
		}
	}
	os.Remove(c.asnSpool.Name())
	os.Remove(c.netSpool.Name())
	return nil
}

// cleanup closes whatever is still open after a failed write; the
// destination files are left behind (possibly truncated) for the
// caller to inspect or remove, but the spools are always deleted.
func (c *corpusStream) cleanup() {
	if c.done {
		return
	}
	c.done = true
	for _, f := range []*os.File{c.as2org, c.pdb, c.apnicF, c.asrankF, c.web} {
		if f != nil {
			f.Close()
		}
	}
	for _, f := range []*os.File{c.asnSpool, c.netSpool} {
		if f != nil {
			f.Close()
			os.Remove(f.Name())
		}
	}
}
