package synth

import (
	"fmt"
	"strings"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/peeringdb"
)

// pendingRank defers AS-Rank assignment until all entities exist.
type pendingRank struct {
	asn  asnum.ASN
	want int
}

// namedState tracks cross-phase bookkeeping populated by the named
// builders and consumed by the anonymous-unit budget maths.
type namedState struct {
	pendingRanks []pendingRank
	// plainOrgs are candidate (first ASN, country) rows for the
	// "unchanged" APNIC population.
	plainOrgs []plainOrg
	// named changed-org budgets already consumed.
	namedChanged  int
	namedAS2Org   int64
	namedMarginal int64
	// singleton favicon count (site:… icons used once).
	uniqueIcons int
}

type plainOrg struct {
	asn asnum.ASN
	cc  string
}

// label derives the domain brand label from a conglomerate key:
// "deutsche-telekom" → "deutschetelekom".
func label(key string) string {
	return strings.ReplaceAll(strings.ReplaceAll(key, "-", ""), ".", "")
}

// countriesFor deterministically picks n distinct countries for entity
// index i.
func (g *gen) countriesFor(i, n int) []string {
	if n > len(countryPool) {
		n = len(countryPool)
	}
	start := (i * 7) % len(countryPool)
	out := make([]string, 0, n)
	for j := 0; j < n; j++ {
		out = append(out, countryPool[(start+j)%len(countryPool)])
	}
	return out
}

// congIcon returns the favicon identity for a conglomerate.
func congIcon(spec CongSpec) string {
	if spec.BrandKey != "" {
		return "brand:" + spec.BrandKey
	}
	return "site:cong-" + spec.Key
}

// buildConglomerates embeds the named international conglomerates with
// their Table 8 / Table 9 targets.
func (g *gen) buildConglomerates() {
	for i, spec := range conglomerates {
		g.buildConglomerate(i, spec)
	}
}

func (g *gen) buildConglomerate(i int, spec CongSpec) {
	lbl := label(spec.Key)
	ccs := g.countriesFor(i, spec.CountriesBorges)
	sameLabelStyle := i%2 == 0

	org := &TrueOrg{Key: "cong:" + spec.Key, Name: spec.Name, Countries: ccs}

	// Main subsidiary: the organization AS2Org already sees.
	mainASNs := []asnum.ASN{g.claim(spec.MainASN)}
	for k := 1; k < spec.MainASNs; k++ {
		mainASNs = append(mainASNs, g.alloc())
	}
	mainOID := fmt.Sprintf("ORG-%s-MAIN", strings.ToUpper(lbl))
	g.addWHOIS(mainOID, spec.Name, ccs[0], mainASNs)
	org.ASNs = append(org.ASNs, mainASNs...)
	org.WHOISOrgs = append(org.WHOISOrgs, mainOID)

	// Main APNIC rows: UsersAS2Org split over the first
	// CountriesAS2Org countries, cycling over the main ASNs.
	mainSplit := g.splitUsers(spec.UsersAS2Org, spec.CountriesAS2Org)
	for c := 0; c < spec.CountriesAS2Org; c++ {
		g.users(mainASNs[c%len(mainASNs)], ccs[c], mainSplit[c])
	}

	// Main website + PeeringDB org.
	mainHost := g.host("www." + lbl + ".com")
	icon := congIcon(spec)
	g.ds.Web.AddSite(mainHost, icon)
	g.ds.Truth.registerIcon(icon, IconCompany)
	mainPDB := g.pdbOrgID()
	g.ds.PDB.AddOrg(orgFor(mainPDB, spec.Name, "https://"+mainHost))
	mainURL := "https://" + mainHost + "/"
	for k, a := range mainASNs {
		site := ""
		if k == 0 {
			site = mainURL
		}
		g.addNet(mainPDB, a, fmt.Sprintf("%s AS%d", spec.Name, uint32(a)), "", "", site)
	}

	// Secondary subsidiaries. Enough subsidiaries are created that no
	// single one outweighs the main organization — the main must remain
	// "the largest prior group" (§6.1's marginal-growth definition).
	numSubs := spec.CountriesBorges - spec.CountriesAS2Org
	if numSubs < 1 {
		numSubs = 1
	}
	if marginal := spec.UsersBorges - spec.UsersAS2Org; marginal > 0 && spec.UsersAS2Org > 0 {
		need := int(float64(marginal)/(0.8*float64(spec.UsersAS2Org))) + 1
		if need > numSubs {
			numSubs = need
		}
	}
	subShare := g.splitUsers(spec.UsersBorges-spec.UsersAS2Org, numSubs)
	signals := spec.Signals
	if len(signals) == 0 {
		signals = allSignals
	}
	var naSiblings []asnum.ASN
	faviconSites := 0
	for j := 0; j < numSubs; j++ {
		cc := ccs[(spec.CountriesAS2Org+j)%len(ccs)]
		mask := signals[j%len(signals)]
		subASNs := make([]asnum.ASN, 0, spec.SubASNs)
		for k := 0; k < spec.SubASNs; k++ {
			subASNs = append(subASNs, g.alloc())
		}
		subOID := fmt.Sprintf("ORG-%s-%s-%d", strings.ToUpper(lbl), cc, j)
		subName := fmt.Sprintf("%s %s", spec.Name, cc)
		g.addWHOIS(subOID, subName, cc, subASNs)
		org.ASNs = append(org.ASNs, subASNs...)
		org.WHOISOrgs = append(org.WHOISOrgs, subOID)
		g.users(subASNs[0], cc, subShare[j])

		// PeeringDB object for the subsidiary's lead network.
		pdbOrg := mainPDB
		if !mask.Has(SigOIDP) {
			pdbOrg = g.pdbOrgID()
			g.ds.PDB.AddOrg(orgFor(pdbOrg, subName, ""))
		}
		website := ""
		switch {
		case mask.Has(SigRR):
			switch g.rng.Intn(4) {
			case 0: // reports the main URL outright
				website = mainURL
				g.countDupURLs++
			case 1: // meta refresh to the main site
				h := g.host("www." + lbl + "-" + strings.ToLower(cc) + ".com")
				g.ds.Web.MetaRefreshHost(h, mainURL)
				website = "https://" + h + "/"
			default: // HTTP acquisition redirect
				h := g.host("www." + lbl + "-" + strings.ToLower(cc) + ".net")
				g.ds.Web.RedirectHost(h, mainURL)
				website = "https://" + h + "/"
			}
		case mask.Has(SigFavicon):
			var h string
			if sameLabelStyle {
				h = g.host("www." + lbl + "." + strings.ToLower(cc))
			} else {
				h = g.host("www." + lbl + strings.ToLower(cc) + ".com")
			}
			g.ds.Web.AddSite(h, icon)
			website = "https://" + h + "/"
			faviconSites++
		}
		if mask.Has(SigNotesAka) {
			naSiblings = append(naSiblings, subASNs[0])
		}
		g.addNet(pdbOrg, subASNs[0], subName, "", "", website)
	}

	// The main network's notes report the N&A-linked subsidiaries
	// (the Deutsche Telekom pattern of Fig. 4).
	if len(naSiblings) > 0 {
		notes := siblingNotes(naSiblings, g.rng)
		g.setNetText(mainASNs[0], "", notes)
		g.ds.Truth.NERSiblings[mainASNs[0]] = append([]asnum.ASN(nil), naSiblings...)
		g.ds.Truth.NERKind[mainASNs[0]] = RecordSiblingText
		g.countSibling++
	}
	if faviconSites > 0 {
		if sameLabelStyle {
			g.countSameBrand++
		} else {
			g.countDiffRecover++
		}
	}

	g.ds.Truth.addOrg(org)
	g.named.namedChanged++
	g.named.namedAS2Org += spec.UsersAS2Org
	g.named.namedMarginal += spec.UsersBorges - spec.UsersAS2Org
	if spec.TopRank > 0 {
		g.named.pendingRanks = append(g.named.pendingRanks, pendingRank{mainASNs[0], spec.TopRank})
	}
}

// buildHypergiants embeds the 16 hypergiants of §6.1 with the Figure 9
// gains, including the Edgecast/Limelight consolidation through edg.io.
func (g *gen) buildHypergiants() {
	// The shared destination of the Edgio merger.
	edgHost := g.host("www.edg.io")
	g.ds.Web.AddSite(edgHost, "brand:edgio")
	g.ds.Truth.registerIcon("brand:edgio", IconCompany)
	edgioOrg := &TrueOrg{Key: "hg:edgio", Name: "Edgio"}

	for i, spec := range hypergiants {
		asns := []asnum.ASN{g.claim(spec.ASN)}
		for k := 1; k < spec.BaseASNs; k++ {
			asns = append(asns, g.alloc())
		}
		oid := fmt.Sprintf("ORG-HG-%s", strings.ToUpper(label(spec.Key)))
		g.addWHOIS(oid, spec.Name, "US", asns)

		pdbOrg := g.pdbOrgID()
		g.ds.PDB.AddOrg(orgFor(pdbOrg, spec.Name, ""))
		var website string
		isEdgio := spec.Key == "edgecast" || spec.Key == "limelight"
		if isEdgio {
			// Both legacy brands redirect to edg.io (Fig. 5a).
			h := g.host("www." + label(spec.Key) + "-cdn.com")
			g.ds.Web.RedirectHost(h, "https://"+edgHost+"/")
			website = "https://" + h + "/"
			edgioOrg.ASNs = append(edgioOrg.ASNs, asns...)
			edgioOrg.WHOISOrgs = append(edgioOrg.WHOISOrgs, oid)
		} else {
			h := g.host("www." + label(spec.Key) + ".com")
			icon := "site:hg-" + spec.Key
			if spec.BrandKey != "" {
				icon = "brand:" + spec.BrandKey
			}
			g.ds.Web.AddSite(h, icon)
			g.ds.Truth.registerIcon(icon, IconCompany)
			website = "https://" + h + "/"
		}
		g.addNet(pdbOrg, asns[0], spec.Name, "", "", website)

		org := &TrueOrg{Key: "hg:" + spec.Key, Name: spec.Name,
			ASNs: asns, WHOISOrgs: []string{oid}, Countries: []string{"US"}}

		// The Figure 9 gain unit, attached via the configured signal.
		if spec.Gain > 0 && !isEdgio {
			gainASNs := make([]asnum.ASN, 0, spec.Gain)
			for k := 0; k < spec.Gain; k++ {
				gainASNs = append(gainASNs, g.alloc())
			}
			gainOID := oid + "-UNIT"
			g.addWHOIS(gainOID, spec.Name+" Unit", "US", gainASNs)
			org.ASNs = append(org.ASNs, gainASNs...)
			org.WHOISOrgs = append(org.WHOISOrgs, gainOID)
			switch spec.GainSignal {
			case SigOIDP:
				g.addNet(pdbOrg, gainASNs[0], spec.Name+" Unit", "", "", "")
			case SigNotesAka:
				g.setNetText(asns[0], "", siblingNotes(gainASNs[:1], g.rng))
				g.ds.Truth.NERSiblings[asns[0]] = gainASNs[:1]
				g.ds.Truth.NERKind[asns[0]] = RecordSiblingText
				g.countSibling++
				unitOrg := g.pdbOrgID()
				g.ds.PDB.AddOrg(orgFor(unitOrg, spec.Name+" Unit", ""))
				g.addNet(unitOrg, gainASNs[0], spec.Name+" Unit", "", "", "")
			case SigFavicon:
				unitOrg := g.pdbOrgID()
				g.ds.PDB.AddOrg(orgFor(unitOrg, spec.Name+" Cloud", ""))
				h := g.host("www." + label(spec.Key) + "cloud.com")
				g.ds.Web.AddSite(h, "brand:"+spec.BrandKey)
				g.addNet(unitOrg, gainASNs[0], spec.Name+" Cloud", "", "", "https://"+h+"/")
				g.countDiffRecover++
			}
		}
		if !isEdgio {
			g.ds.Truth.addOrg(org)
		}
		if spec.TopRank > 0 {
			g.named.pendingRanks = append(g.named.pendingRanks, pendingRank{asns[0], spec.TopRank})
		}
		_ = i
	}
	g.ds.Truth.addOrg(edgioOrg)
}

// buildSpecials embeds the remaining named structures: the US DoD (the
// largest WHOIS organization, 973 networks), ISC (the largest PeeringDB
// organization, 82 networks), and the DE-CIX family whose shared favicon
// the classifier cannot resolve (§5.3's reported failure mode).
func (g *gen) buildSpecials() {
	// US DoD: WHOIS only.
	dod := make([]asnum.ASN, 0, g.t.dodASNs)
	for i := 0; i < g.t.dodASNs; i++ {
		dod = append(dod, g.alloc())
	}
	g.addWHOIS("DNIC-ARIN", "DoD Network Information Center", "US", dod)
	g.ds.Truth.addOrg(&TrueOrg{Key: "special:dod", Name: "DoD Network Information Center",
		ASNs: dod, WHOISOrgs: []string{"DNIC-ARIN"}, Countries: []string{"US"}})

	// ISC: one PeeringDB organization with many networks, one website.
	iscASNs := make([]asnum.ASN, 0, g.t.iscNets)
	for i := 0; i < g.t.iscNets; i++ {
		iscASNs = append(iscASNs, g.alloc())
	}
	g.addWHOIS("ISC-ARIN", "Internet Systems Consortium", "US", iscASNs)
	iscPDB := g.pdbOrgID()
	iscHost := g.host("www.isc.org")
	g.ds.Web.AddSite(iscHost, "site:isc")
	g.named.uniqueIcons++
	g.ds.PDB.AddOrg(orgFor(iscPDB, "Internet Systems Consortium", "https://"+iscHost))
	for i, a := range iscASNs {
		g.addNet(iscPDB, a, fmt.Sprintf("ISC-%d", i), "", "", "https://"+iscHost+"/")
		if i > 0 {
			g.countDupURLs++
		}
	}
	g.ds.Truth.addOrg(&TrueOrg{Key: "special:isc", Name: "Internet Systems Consortium",
		ASNs: iscASNs, WHOISOrgs: []string{"ISC-ARIN"}, Countries: []string{"US"}})

	// DE-CIX and subsidiaries: same favicon, unrelated names — the
	// classifier's designed false negative.
	decix := &TrueOrg{Key: "special:decix", Name: "DE-CIX"}
	hosts := []string{"www.de-cix.net", "www.aqaba-ix.com", "www.ruhr-cix.de"}
	g.ds.Truth.registerIcon("site:decix-logo", IconCompany)
	for _, h := range hosts {
		a := g.alloc()
		oid := "ORG-DECIX-" + strings.ToUpper(label(h))
		g.addWHOIS(oid, "DE-CIX "+h, "DE", []asnum.ASN{a})
		decix.ASNs = append(decix.ASNs, a)
		decix.WHOISOrgs = append(decix.WHOISOrgs, oid)
		hh := g.host(h)
		g.ds.Web.AddSite(hh, "site:decix-logo")
		p := g.pdbOrgID()
		g.ds.PDB.AddOrg(orgFor(p, "DE-CIX "+h, ""))
		g.addNet(p, a, "DE-CIX "+h, "", "", "https://"+hh+"/")
	}
	g.countDiffUnrecover++
	g.ds.Truth.addOrg(decix)
}

// setNetText attaches text to an already-created PeeringDB net.
func (g *gen) setNetText(a asnum.ASN, aka, notes string) {
	n := g.ds.PDB.NetByASN(a)
	if n == nil {
		return
	}
	cp := *n
	cp.Aka = aka
	cp.Notes = notes
	g.ds.PDB.AddNet(cp)
}

func orgFor(id int, name, website string) peeringdb.Org {
	return peeringdb.Org{ID: id, Name: name, Website: website}
}
