package synth

import (
	"math/rand"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/simllm"
)

// TestEngineMatchesTruthOnEveryRecord runs the extraction engine over
// every generated text record — not the Table 4 subsample — and demands
// per-kind agreement with ground truth. This is the contract that keeps
// the text generator and the cue lexicons from drifting apart: a new
// template that accidentally triggers (or dodges) a cue fails here
// immediately.
func TestEngineMatchesTruthOnEveryRecord(t *testing.T) {
	ds, err := Generate(Config{Seed: 9, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, n := range ds.PDB.Nets() {
		kind, ok := ds.Truth.NERKind[n.ASN]
		if !ok {
			continue
		}
		got, _ := simllm.ExtractSiblings(n.Notes, n.Aka)
		truth := ds.Truth.NERSiblings[n.ASN]
		checked++
		switch kind {
		case RecordSiblingText:
			if !equalASNs(got, truth) {
				t.Errorf("%v (%s): extracted %v, truth %v\nnotes=%q aka=%q",
					n.ASN, kind, got, truth, n.Notes, n.Aka)
			}
		case RecordNoiseText, RecordNonNumeric:
			if len(got) != 0 {
				t.Errorf("%v (%s): spurious extraction %v\nnotes=%q aka=%q",
					n.ASN, kind, got, n.Notes, n.Aka)
			}
		case RecordHardFN:
			if len(got) != 0 {
				t.Errorf("%v (%s): designed miss was extracted: %v\nnotes=%q",
					n.ASN, kind, got, n.Notes)
			}
		case RecordHardFP:
			if len(got) == 0 {
				t.Errorf("%v (%s): designed over-extraction missing\nnotes=%q",
					n.ASN, kind, n.Notes)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d labelled records checked", checked)
	}
}

func equalASNs(a, b []asnum.ASN) bool {
	as := asnum.Dedup(append([]asnum.ASN(nil), a...))
	bs := asnum.Dedup(append([]asnum.ASN(nil), b...))
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestNoiseTemplatesNeverExtract hammers every noise generator with many
// seeds: no rendering may ever produce a sibling extraction.
func TestNoiseTemplatesNeverExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 2000; i++ {
		notes := noiseNotes(rng)
		if got, _ := simllm.ExtractSiblings(notes, ""); len(got) != 0 {
			t.Fatalf("noise notes extracted %v: %q", got, notes)
		}
	}
	g := &gen{rng: rng, cfg: Config{Scale: 1}, t: scaled(Config{Scale: 1})}
	for i := 0; i < 2000; i++ {
		aka := g.akaNoise()
		if got, _ := simllm.ExtractSiblings("", aka); len(got) != 0 {
			t.Fatalf("noise aka extracted %v: %q", got, aka)
		}
	}
	for i := 0; i < 500; i++ {
		text := nonNumericText(rng)
		if got, _ := simllm.ExtractSiblings(text, ""); len(got) != 0 {
			t.Fatalf("non-numeric text extracted %v: %q", got, text)
		}
	}
}

// TestSiblingTemplatesAlwaysExtract hammers the sibling generator: every
// rendering must yield exactly the listed siblings (decoy upstream
// sections included).
func TestSiblingTemplatesAlwaysExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for i := 0; i < 2000; i++ {
		nSib := 1 + rng.Intn(3)
		siblings := make([]asnum.ASN, nSib)
		for j := range siblings {
			siblings[j] = asnum.ASN(200000 + rng.Intn(100000))
		}
		siblings = asnum.Dedup(siblings)
		var got []asnum.ASN
		if rng.Intn(2) == 0 {
			got, _ = simllm.ExtractSiblings(siblingNotes(siblings, rng), "")
		} else {
			got, _ = simllm.ExtractSiblings("", siblingAka(siblings, rng))
		}
		if !equalASNs(got, siblings) {
			t.Fatalf("sibling rendering mismatch: got %v want %v", got, siblings)
		}
	}
}

// TestHardCaseTemplates verifies the designed failure modes directly.
func TestHardCaseTemplates(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 500; i++ {
		sib := asnum.ASN(300000 + rng.Intn(1000))
		if got, _ := simllm.ExtractSiblings(hardFNNotes(sib, rng), ""); len(got) != 0 {
			t.Fatalf("hard-FN rendering was extracted: %v", got)
		}
		wrong := asnum.ASN(400000 + rng.Intn(1000))
		got, _ := simllm.ExtractSiblings(hardFPNotes(wrong, rng), "")
		if len(got) != 1 || got[0] != wrong {
			t.Fatalf("hard-FP rendering not extracted as designed: %v", got)
		}
	}
}
