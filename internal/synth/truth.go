package synth

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/websim"
)

// RecordKind labels a PeeringDB text record for the Table 4 evaluation.
type RecordKind uint8

// Record kinds.
const (
	// RecordNoText marks records without notes/aka text.
	RecordNoText RecordKind = iota
	// RecordNonNumeric marks text without digits (input-filter drops).
	RecordNonNumeric
	// RecordSiblingText marks numeric text that truly reports sibling
	// ASNs in an extractable form (expected TP).
	RecordSiblingText
	// RecordNoiseText marks numeric text with no sibling content
	// (expected TN): phones, years, addresses, upstream lists.
	RecordNoiseText
	// RecordHardFN marks sibling content phrased so that a careful
	// reader rejects it (bare numbers, buried context) — the paper's
	// AT&T AS7132 failure mode. Expected extraction: nothing.
	RecordHardFN
	// RecordHardFP marks text that explicitly-but-wrongly claims an
	// unrelated ASN as a sibling — the paper's PACNET/HKBN failure
	// mode. Expected extraction: the wrong ASN.
	RecordHardFP
)

// String implements fmt.Stringer.
func (k RecordKind) String() string {
	switch k {
	case RecordNoText:
		return "no-text"
	case RecordNonNumeric:
		return "non-numeric"
	case RecordSiblingText:
		return "sibling-text"
	case RecordNoiseText:
		return "noise-text"
	case RecordHardFN:
		return "hard-fn"
	case RecordHardFP:
		return "hard-fp"
	default:
		return "unknown"
	}
}

// IconKind labels a favicon group for the Table 5 evaluation.
type IconKind uint8

// Icon kinds.
const (
	// IconCompany marks an icon genuinely shared by one company.
	IconCompany IconKind = iota
	// IconFramework marks a default icon of a web technology shared by
	// unrelated sites.
	IconFramework
)

// TrueOrg is one ground-truth organization.
type TrueOrg struct {
	// Key is a stable identifier ("cong:claro", "tail:123", …).
	Key string
	// Name is the display name.
	Name string
	// ASNs are all member networks.
	ASNs []asnum.ASN
	// WHOISOrgs are the OID_W identifiers the org fragments into.
	WHOISOrgs []string
	// Countries are the ISO country codes where the org has users.
	Countries []string
}

// GroundTruth is the oracle the evaluation harness scores against.
type GroundTruth struct {
	orgOf map[asnum.ASN]*TrueOrg
	orgs  map[string]*TrueOrg

	// NERSiblings maps a record's ASN to the sibling ASNs its text
	// truly reports (nil for noise records). Only set for records with
	// numeric text.
	NERSiblings map[asnum.ASN][]asnum.ASN
	// NERKind labels each PDB net's record for Table 4 accounting.
	NERKind map[asnum.ASN]RecordKind

	// iconKind maps favicon *hashes* (hex SHA-256 of the icon bytes,
	// as the crawler reports them) to their ground-truth kind.
	iconKind map[string]IconKind
}

func newGroundTruth() *GroundTruth {
	return &GroundTruth{
		orgOf:       make(map[asnum.ASN]*TrueOrg),
		orgs:        make(map[string]*TrueOrg),
		NERSiblings: make(map[asnum.ASN][]asnum.ASN),
		NERKind:     make(map[asnum.ASN]RecordKind),
		iconKind:    make(map[string]IconKind),
	}
}

// addOrg registers a true organization and indexes its members.
func (g *GroundTruth) addOrg(o *TrueOrg) {
	g.orgs[o.Key] = o
	for _, a := range o.ASNs {
		g.orgOf[a] = o
	}
}

// OrgOf returns the true organization of a, or nil.
func (g *GroundTruth) OrgOf(a asnum.ASN) *TrueOrg { return g.orgOf[a] }

// Org returns the true organization with the given key, or nil.
func (g *GroundTruth) Org(key string) *TrueOrg { return g.orgs[key] }

// Orgs returns all true organizations sorted by key.
func (g *GroundTruth) Orgs() []*TrueOrg {
	out := make([]*TrueOrg, 0, len(g.orgs))
	for _, o := range g.orgs {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// NumOrgs returns the number of true organizations.
func (g *GroundTruth) NumOrgs() int { return len(g.orgs) }

// SameOrg reports whether two ASNs are truly under one organization.
func (g *GroundTruth) SameOrg(a, b asnum.ASN) bool {
	oa, ob := g.orgOf[a], g.orgOf[b]
	return oa != nil && oa == ob
}

// registerIcon records the ground-truth kind for a websim favicon
// identity, keyed by the hash the crawler will compute.
func (g *GroundTruth) registerIcon(iconID string, kind IconKind) {
	g.iconKind[IconHash(iconID)] = kind
}

// IconKindOf returns the ground-truth kind for a favicon hash.
func (g *GroundTruth) IconKindOf(hash string) (IconKind, bool) {
	k, ok := g.iconKind[hash]
	return k, ok
}

// IconHash computes the hash the crawler reports for a websim favicon
// identity (hex SHA-256 of the icon payload).
func IconHash(iconID string) string {
	sum := sha256.Sum256(websim.FaviconBytes(iconID))
	return hex.EncodeToString(sum[:])
}
