package synth

import (
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
)

const testScale = 0.05

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(Config{Seed: 3, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateConfigValidation(t *testing.T) {
	if _, err := Generate(Config{Scale: 0.0001}); err == nil {
		t.Error("tiny scale should fail")
	}
	if _, err := Generate(Config{Scale: MaxScale * 2}); err == nil {
		t.Error("huge scale should fail")
	}
	// Defaults are applied without error at a small explicit scale.
	if _, err := Generate(Config{Seed: 0, Scale: 0.01}); err != nil {
		t.Errorf("defaulted seed should generate: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(Config{Seed: 5, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 5, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if a.WHOIS.NumASNs() != b.WHOIS.NumASNs() || a.PDB.NumNets() != b.PDB.NumNets() {
		t.Fatal("same seed produced different corpora")
	}
	for _, asn := range a.WHOIS.ASNs()[:100] {
		ra, rb := a.WHOIS.AS(asn), b.WHOIS.AS(asn)
		if rb == nil || ra.OrgID != rb.OrgID {
			t.Fatalf("ASN %v differs across identical seeds", asn)
		}
	}
	if a.APNIC.TotalUsers() != b.APNIC.TotalUsers() {
		t.Error("APNIC totals differ across identical seeds")
	}
	// Different seeds must differ somewhere.
	c, err := Generate(Config{Seed: 6, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if c.APNIC.TotalUsers() == a.APNIC.TotalUsers() && c.PDB.NumOrgs() == a.PDB.NumOrgs() {
		// Totals are calibrated so they may match; check the web layout.
		same := true
		for _, n := range a.PDB.NetsWithWebsite()[:50] {
			m := c.PDB.NetByASN(n.ASN)
			if m == nil || m.Website != n.Website {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical corpora")
		}
	}
}

func TestScaledTargets(t *testing.T) {
	ds := testDataset(t)
	tol := func(got, want int, name string) {
		t.Helper()
		w := int(float64(want) * testScale)
		lo, hi := w-w/10-10, w+w/10+10
		if got < lo || got > hi {
			t.Errorf("%s = %d, want ≈%d (scaled from %d)", name, got, w, want)
		}
	}
	tol(ds.WHOIS.NumASNs(), 117431, "WHOIS ASNs")
	tol(ds.WHOIS.NumOrgs(), 95300, "WHOIS orgs")
	tol(ds.PDB.NumNets(), 30955, "PDB nets")
	// PDB org count drifts more at small scales: the named multi-net
	// organizations are embedded in full regardless of scale.
	pdbOrgTarget := 27712
	if got, w := ds.PDB.NumOrgs(), int(float64(pdbOrgTarget)*testScale); got < w-w/4 || got > w+w/4 {
		t.Errorf("PDB orgs = %d, want ≈%d ±25%%", got, w)
	}
	tol(len(ds.PDB.NetsWithText()), 17633, "text records")
	tol(len(ds.PDB.NetsWithWebsite()), 26225, "website records")
}

func TestEveryPDBNetHasWHOISRecord(t *testing.T) {
	ds := testDataset(t)
	for _, n := range ds.PDB.Nets() {
		if ds.WHOIS.AS(n.ASN) == nil {
			t.Fatalf("PDB net %v missing from WHOIS (universe must cover it)", n.ASN)
		}
	}
}

func TestTruthConsistency(t *testing.T) {
	ds := testDataset(t)
	// Every WHOIS ASN belongs to exactly one true org, and the org
	// lists it back.
	for _, a := range ds.WHOIS.ASNs() {
		org := ds.Truth.OrgOf(a)
		if org == nil {
			t.Fatalf("ASN %v has no ground-truth org", a)
		}
		found := false
		for _, m := range org.ASNs {
			if m == a {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("org %s does not list its member %v", org.Key, a)
		}
	}
	// True orgs never share ASNs.
	seen := map[asnum.ASN]string{}
	for _, org := range ds.Truth.Orgs() {
		for _, a := range org.ASNs {
			if prev, dup := seen[a]; dup {
				t.Fatalf("ASN %v in both %s and %s", a, prev, org.Key)
			}
			seen[a] = org.Key
		}
	}
}

func TestNERTruthLabels(t *testing.T) {
	ds := testDataset(t)
	var siblings, noise, hardFN, hardFP int
	for a, kind := range ds.Truth.NERKind {
		net := ds.PDB.NetByASN(a)
		switch kind {
		case RecordSiblingText, RecordHardFN:
			if len(ds.Truth.NERSiblings[a]) == 0 {
				t.Errorf("%v labelled %v but has no truth siblings", a, kind)
			}
			if net == nil || !net.HasText() {
				t.Errorf("%v labelled %v but has no text", a, kind)
			}
			if kind == RecordHardFN {
				hardFN++
			} else {
				siblings++
			}
		case RecordNoiseText:
			noise++
			if len(ds.Truth.NERSiblings[a]) != 0 {
				t.Errorf("noise record %v has truth siblings", a)
			}
		case RecordHardFP:
			hardFP++
		}
		// Truth siblings must belong to the record's own true org
		// (except hard-FP records, which claim wrongly by design).
		if kind == RecordSiblingText || kind == RecordHardFN {
			for _, sib := range ds.Truth.NERSiblings[a] {
				if !ds.Truth.SameOrg(a, sib) {
					t.Errorf("record %v claims %v but truth disagrees", a, sib)
				}
			}
		}
	}
	if siblings == 0 || noise == 0 || hardFN == 0 || hardFP == 0 {
		t.Errorf("label counts: sibling=%d noise=%d hardFN=%d hardFP=%d",
			siblings, noise, hardFN, hardFP)
	}
}

func TestNamedEntitiesPresent(t *testing.T) {
	ds := testDataset(t)
	for _, spec := range Conglomerates() {
		org := ds.Truth.Org("cong:" + spec.Key)
		if org == nil {
			t.Errorf("conglomerate %s missing", spec.Key)
			continue
		}
		if len(org.WHOISOrgs) < 2 {
			t.Errorf("%s has %d WHOIS orgs, want ≥2 (it must be mergeable)",
				spec.Key, len(org.WHOISOrgs))
		}
		if got := ds.APNIC.UsersOfSet(org.ASNs); got != spec.UsersBorges {
			t.Errorf("%s users = %d, want %d", spec.Key, got, spec.UsersBorges)
		}
		if got := len(ds.APNIC.CountriesOfSet(org.ASNs)); got != spec.CountriesBorges {
			t.Errorf("%s countries = %d, want %d", spec.Key, got, spec.CountriesBorges)
		}
	}
	for _, hg := range Hypergiants() {
		if ds.Truth.OrgOf(hg.ASN) == nil {
			t.Errorf("hypergiant %s (AS%d) missing", hg.Key, uint32(hg.ASN))
		}
	}
	// Edgecast and Limelight share one true org.
	if !ds.Truth.SameOrg(15133, 22822) {
		t.Error("Edgecast and Limelight must share a true org")
	}
	// The DoD org is the largest WHOIS org.
	dod := ds.Truth.Org("special:dod")
	if dod == nil || len(dod.ASNs) < 10 {
		t.Errorf("DoD org malformed: %+v", dod)
	}
}

func TestWebUniverseServesReportedSites(t *testing.T) {
	ds := testDataset(t)
	missing := 0
	for _, n := range ds.PDB.NetsWithWebsite() {
		host := hostOf(n.Website)
		if host == "" {
			t.Errorf("net %v has unparsable website %q", n.ASN, n.Website)
			continue
		}
		if !ds.Web.HasHost(host) {
			missing++
			if missing < 5 {
				t.Errorf("website %q of %v not in the universe", n.Website, n.ASN)
			}
		}
	}
	if missing > 0 {
		t.Errorf("%d reported websites missing from the universe", missing)
	}
}

func hostOf(u string) string {
	s := u
	if i := indexOf(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' || s[i] == ':' {
			return s[:i]
		}
	}
	return s
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestIconTruthRegistered(t *testing.T) {
	ds := testDataset(t)
	// Probe known identities of both kinds.
	for _, id := range []string{"brand:claro", "brand:edgio", "site:decix-logo"} {
		if k, ok := ds.Truth.IconKindOf(IconHash(id)); !ok || k != IconCompany {
			t.Errorf("%s should be a registered company icon", id)
		}
	}
	if k, ok := ds.Truth.IconKindOf(IconHash("framework:bootstrap#0")); !ok || k != IconFramework {
		t.Error("framework variant icon should be registered as framework")
	}
	if _, ok := ds.Truth.IconKindOf("not-a-hash"); ok {
		t.Error("unknown hash should not resolve")
	}
}

func TestRankingStructure(t *testing.T) {
	ds := testDataset(t)
	if ds.ASRank.Len() == 0 {
		t.Fatal("empty ranking")
	}
	entries := ds.ASRank.Entries()
	for i := 1; i < len(entries); i++ {
		if entries[i].Rank <= entries[i-1].Rank {
			t.Fatal("ranks not strictly increasing")
		}
	}
	// Named top entities appear near the top.
	if r := ds.ASRank.RankOf(3356); r == 0 || r > 5 {
		t.Errorf("Lumen rank = %d, want ≤5", r)
	}
}

func TestRecordKindString(t *testing.T) {
	kinds := []RecordKind{RecordNoText, RecordNonNumeric, RecordSiblingText,
		RecordNoiseText, RecordHardFN, RecordHardFP, RecordKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
}
