package synth

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"github.com/nu-aqualab/borges/internal/apnic"
	"github.com/nu-aqualab/borges/internal/asrank"
	"github.com/nu-aqualab/borges/internal/peeringdb"
	"github.com/nu-aqualab/borges/internal/websim"
	"github.com/nu-aqualab/borges/internal/whois"
)

// serializeDataset renders every container through its deterministic
// writer — the byte-level fingerprint the stream equivalence tests
// compare. Two datasets with identical fingerprints are served, built,
// and evaluated identically everywhere downstream.
func serializeDataset(t *testing.T, ds *Dataset) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	buf := &bytes.Buffer{}
	write := func(name string, err error) {
		if err != nil {
			t.Fatalf("serializing %s: %v", name, err)
		}
		out[name] = append([]byte(nil), buf.Bytes()...)
		buf.Reset()
	}
	write("whois", whois.Write(buf, ds.WHOIS))
	write("peeringdb", peeringdb.Write(buf, ds.PDB))
	write("web", websim.WriteManifest(buf, ds.Web))
	write("apnic", apnic.Write(buf, ds.APNIC))
	write("asrank", asrank.Write(buf, ds.ASRank))
	return out
}

// mergeStream runs GenerateStream at the given chunk size and merges
// every chunk, reporting how many chunks were yielded.
func mergeStream(t *testing.T, cfg Config, chunkUnits int) (*Dataset, int) {
	t.Helper()
	merged := newChunk(cfg)
	chunks := 0
	err := GenerateStream(cfg, chunkUnits, func(ds *Dataset) error {
		chunks++
		MergeChunk(merged, ds)
		return nil
	})
	if err != nil {
		t.Fatalf("GenerateStream(chunk=%d): %v", chunkUnits, err)
	}
	return merged, chunks
}

// TestGenerateStreamEquivalence: the merged stream must be
// byte-identical (per container, through the deterministic writers) to
// the buffered Generate output, at every chunk size — including sizes
// small enough to force hundreds of flushes.
func TestGenerateStreamEquivalence(t *testing.T) {
	cfg := Config{Seed: 7, Scale: 0.01}
	ref, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	want := serializeDataset(t, ref)

	for _, chunkUnits := range []int{0, 1, 3, 17, 256, 1 << 20} {
		t.Run(fmt.Sprintf("chunk=%d", chunkUnits), func(t *testing.T) {
			merged, chunks := mergeStream(t, cfg, chunkUnits)
			if chunkUnits == 1 && chunks < 100 {
				t.Fatalf("chunk size 1 produced only %d chunks; flushing is not happening", chunks)
			}
			if chunkUnits == 0 && chunks != 1 {
				t.Fatalf("chunk size 0 must yield exactly one chunk, got %d", chunks)
			}
			got := serializeDataset(t, merged)
			for name, w := range want {
				if !bytes.Equal(w, got[name]) {
					t.Errorf("%s diverged from buffered Generate (%d vs %d bytes)",
						name, len(w), len(got[name]))
				}
			}
			if !reflect.DeepEqual(ref.Truth, merged.Truth) {
				t.Error("ground truth diverged from buffered Generate")
			}
		})
	}
}

// TestGenerateStreamSeeds: equivalence must hold across seeds and
// scales, not just one lucky configuration.
func TestGenerateStreamSeeds(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		cfg := Config{Seed: seed, Scale: 0.008}
		ref, err := Generate(cfg)
		if err != nil {
			t.Fatalf("Generate(seed=%d): %v", seed, err)
		}
		want := serializeDataset(t, ref)
		merged, _ := mergeStream(t, cfg, 7+int(seed)*13)
		got := serializeDataset(t, merged)
		for name, w := range want {
			if !bytes.Equal(w, got[name]) {
				t.Errorf("seed %d: %s diverged", seed, name)
			}
		}
	}
}

// TestGenerateStreamYieldError: a failing yield aborts generation and
// surfaces the error.
func TestGenerateStreamYieldError(t *testing.T) {
	wantErr := fmt.Errorf("sink full")
	calls := 0
	err := GenerateStream(Config{Seed: 1, Scale: 0.008}, 1, func(*Dataset) error {
		calls++
		if calls == 3 {
			return wantErr
		}
		return nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("got err %v, want %v", err, wantErr)
	}
	if calls != 3 {
		t.Fatalf("yield called %d times after error, want 3", calls)
	}
}

// TestGenerateScaleBounds: the documented scale bounds are enforced
// with a clear error, and in-range values (including the raised
// mega-scale ceiling) are accepted by validation.
func TestGenerateScaleBounds(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, Scale: MaxScale + 1}); err == nil {
		t.Fatal("scale above MaxScale accepted")
	}
	if _, err := Generate(Config{Seed: 1, Scale: MinScale / 2}); err == nil {
		t.Fatal("scale below MinScale accepted")
	}
	// Validation-only check at MaxScale: newGen must accept it (the
	// full build at 1024× is a benchmark-tier workload, not a test).
	if _, err := newGen(Config{Seed: 1, Scale: MaxScale}); err != nil {
		t.Fatalf("MaxScale rejected: %v", err)
	}
}
