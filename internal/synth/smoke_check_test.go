package synth

import (
	"testing"
	"time"
)

// TestSmokeFullScale prints full-scale corpus statistics; run with
//
//	go test ./internal/synth/ -run TestSmokeFullScale -v -tags smoke
func TestSmokeFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t0 := time.Now()
	ds, err := Generate(Config{Seed: 1, Scale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("generate:", time.Since(t0))
	t.Log("WHOIS ASNs:", ds.WHOIS.NumASNs(), "orgs:", ds.WHOIS.NumOrgs())
	t.Log("PDB nets:", ds.PDB.NumNets(), "orgs:", ds.PDB.NumOrgs())
	text, numeric := 0, 0
	for _, n := range ds.PDB.Nets() {
		if n.HasText() {
			text++
			if hasDigits(n.Notes) || hasDigits(n.Aka) {
				numeric++
			}
		}
	}
	t.Log("text:", text, "numeric:", numeric)
	t.Log("websites:", len(ds.PDB.NetsWithWebsite()), "sites:", ds.Web.NumSites())
	t.Log("APNIC total:", ds.APNIC.TotalUsers(), "records:", ds.APNIC.Len())
	t.Log("ranking:", ds.ASRank.Len(), "true orgs:", ds.Truth.NumOrgs())
}
