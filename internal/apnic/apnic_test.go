package apnic

import (
	"bytes"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
)

func sampleTable() *Table {
	t := NewTable("20240701")
	t.Add(Record{ASN: 3320, CC: "DE", Users: 24_000_000, PctOfCountry: 32.5})
	t.Add(Record{ASN: 3320, CC: "AT", Users: 1_000_000, PctOfCountry: 12.0})
	t.Add(Record{ASN: 6855, CC: "SK", Users: 2_500_000, PctOfCountry: 55.0})
	t.Add(Record{ASN: 5391, CC: "HR", Users: 1_800_000, PctOfCountry: 60.0})
	t.Add(Record{ASN: 5391, CC: "BA", Users: 0, PctOfCountry: 0})
	return t
}

func TestQueries(t *testing.T) {
	tab := sampleTable()
	if got := tab.UsersOf(3320); got != 25_000_000 {
		t.Errorf("UsersOf(3320) = %d", got)
	}
	if got := tab.UsersOf(99999); got != 0 {
		t.Errorf("UsersOf(unknown) = %d", got)
	}
	if got := tab.CountriesOf(3320); len(got) != 2 || got[0] != "AT" || got[1] != "DE" {
		t.Errorf("CountriesOf(3320) = %v", got)
	}
	// Zero-user record must not count as presence.
	if got := tab.CountriesOf(5391); len(got) != 1 || got[0] != "HR" {
		t.Errorf("CountriesOf(5391) = %v", got)
	}
	set := []asnum.ASN{3320, 6855, 5391}
	if got := tab.UsersOfSet(set); got != 29_300_000 {
		t.Errorf("UsersOfSet = %d", got)
	}
	cc := tab.CountriesOfSet(set)
	want := []string{"AT", "DE", "HR", "SK"}
	if len(cc) != len(want) {
		t.Fatalf("CountriesOfSet = %v", cc)
	}
	for i := range want {
		if cc[i] != want[i] {
			t.Fatalf("CountriesOfSet = %v, want %v", cc, want)
		}
	}
	if got := tab.TotalUsers(); got != 29_300_000 {
		t.Errorf("TotalUsers = %d", got)
	}
	if got := tab.ASNs(); len(got) != 3 || got[0] != 3320 {
		t.Errorf("ASNs = %v", got)
	}
}

func TestRoundTrip(t *testing.T) {
	tab := sampleTable()
	var buf bytes.Buffer
	if err := Write(&buf, tab); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()), "20240701")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tab.Len() || back.TotalUsers() != tab.TotalUsers() {
		t.Fatalf("round trip changed table: %d/%d records, %d/%d users",
			back.Len(), tab.Len(), back.TotalUsers(), tab.TotalUsers())
	}
	var buf2 bytes.Buffer
	if err := Write(&buf2, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("Write is not deterministic")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"nope,x\n",
		"asn,cc,users,pct_of_country\nbad,US,5,1.0\n",
		"asn,cc,users,pct_of_country\n1,US,notanum,1.0\n",
		"asn,cc,users,pct_of_country\n1,US,5,notafloat\n",
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c), "x"); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
	// Empty input yields an empty table.
	tab, err := Parse(strings.NewReader(""), "x")
	if err != nil || tab.Len() != 0 {
		t.Errorf("empty input: table=%v err=%v", tab, err)
	}
}
