// Package apnic models APNIC's per-AS user population estimates
// (labs.apnic.net), the dataset the paper uses to quantify the eyeball
// population of access-network organizations (§6.1) and their
// country-level footprints (§6.2).
//
// Each record estimates, for one (ASN, country) pair, the number of
// Internet users in that country whose traffic originates from that AS.
// An AS serving several countries appears once per country.
package apnic

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/nu-aqualab/borges/internal/asnum"
)

// Record is one (ASN, country) population estimate.
type Record struct {
	ASN asnum.ASN
	// CC is the ISO 3166-1 alpha-2 country code.
	CC string
	// Users is the estimated number of Internet users.
	Users int64
	// PctOfCountry is the estimated share of the country's Internet
	// users served by this AS, in percent (0–100).
	PctOfCountry float64
}

// Table is a parsed APNIC population dataset.
type Table struct {
	// Date is the estimate date in YYYYMMDD form (e.g. "20240701").
	Date string

	records []Record
	byASN   map[asnum.ASN][]int // indexes into records
}

// NewTable returns an empty table for the given date.
func NewTable(date string) *Table {
	return &Table{Date: date, byASN: make(map[asnum.ASN][]int)}
}

// Add appends one record.
func (t *Table) Add(r Record) {
	t.byASN[r.ASN] = append(t.byASN[r.ASN], len(t.records))
	t.records = append(t.records, r)
}

// Len returns the number of records.
func (t *Table) Len() int { return len(t.records) }

// Records returns all records ordered by (ASN, CC).
func (t *Table) Records() []Record {
	out := append([]Record(nil), t.records...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].ASN != out[j].ASN {
			return out[i].ASN < out[j].ASN
		}
		return out[i].CC < out[j].CC
	})
	return out
}

// UsersOf returns the total estimated users of a across all countries.
func (t *Table) UsersOf(a asnum.ASN) int64 {
	var sum int64
	for _, i := range t.byASN[a] {
		sum += t.records[i].Users
	}
	return sum
}

// CountriesOf returns the sorted country codes where a has estimated
// users (> 0).
func (t *Table) CountriesOf(a asnum.ASN) []string {
	var out []string
	for _, i := range t.byASN[a] {
		if t.records[i].Users > 0 {
			out = append(out, t.records[i].CC)
		}
	}
	sort.Strings(out)
	return out
}

// UsersOfSet returns the total estimated users across a set of ASNs.
func (t *Table) UsersOfSet(asns []asnum.ASN) int64 {
	var sum int64
	for _, a := range asns {
		sum += t.UsersOf(a)
	}
	return sum
}

// CountriesOfSet returns the sorted set of countries where any ASN in
// the set has estimated users.
func (t *Table) CountriesOfSet(asns []asnum.ASN) []string {
	seen := make(map[string]bool)
	for _, a := range asns {
		for _, cc := range t.CountriesOf(a) {
			seen[cc] = true
		}
	}
	out := make([]string, 0, len(seen))
	for cc := range seen {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// TotalUsers returns the global estimated user population.
func (t *Table) TotalUsers() int64 {
	var sum int64
	for _, r := range t.records {
		sum += r.Users
	}
	return sum
}

// ASNs returns all ASNs with at least one record, sorted.
func (t *Table) ASNs() []asnum.ASN {
	out := make([]asnum.ASN, 0, len(t.byASN))
	for a := range t.byASN {
		out = append(out, a)
	}
	asnum.Sort(out)
	return out
}

// header is the CSV header for the on-disk format.
var header = []string{"asn", "cc", "users", "pct_of_country"}

// Parse reads the CSV form (header "asn,cc,users,pct_of_country").
func Parse(r io.Reader, date string) (*Table, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = len(header)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("apnic: read: %w", err)
	}
	if len(rows) == 0 {
		return NewTable(date), nil
	}
	if rows[0][0] != header[0] {
		return nil, fmt.Errorf("apnic: missing header, got %q", rows[0])
	}
	t := NewTable(date)
	for i, row := range rows[1:] {
		a, err := asnum.Parse(row[0])
		if err != nil {
			return nil, fmt.Errorf("apnic: row %d: %w", i+2, err)
		}
		users, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("apnic: row %d: users: %w", i+2, err)
		}
		pct, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("apnic: row %d: pct: %w", i+2, err)
		}
		t.Add(Record{ASN: a, CC: row[1], Users: users, PctOfCountry: pct})
	}
	return t, nil
}

// Write serializes the table as CSV in deterministic (ASN, CC) order.
func Write(w io.Writer, t *Table) error {
	if err := WriteHeader(w); err != nil {
		return err
	}
	return WriteRows(w, t)
}

// WriteHeader emits only the CSV header row, so a streaming producer
// can write it once and then append WriteRows output chunk by chunk.
func WriteHeader(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("apnic: write header: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

// WriteRows emits only the data rows, in the table's sorted order.
func WriteRows(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	for _, r := range t.Records() {
		row := []string{
			strconv.FormatUint(uint64(r.ASN), 10),
			r.CC,
			strconv.FormatInt(r.Users, 10),
			strconv.FormatFloat(r.PctOfCountry, 'f', 4, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("apnic: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
