package mapdiff

import (
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

func mapping(groups ...[]asnum.ASN) *cluster.Mapping {
	b := cluster.NewBuilder()
	for _, g := range groups {
		b.Add(cluster.SiblingSet{ASNs: g})
	}
	return b.Build(func(members []asnum.ASN) string {
		return "org-" + members[0].String()
	})
}

func TestStable(t *testing.T) {
	old := mapping([]asnum.ASN{1, 2}, []asnum.ASN{3})
	rep := Compare(old, mapping([]asnum.ASN{1, 2}, []asnum.ASN{3}))
	if rep.Stable != 2 || rep.Merges != 0 || rep.MovedASNs != 0 {
		t.Errorf("report = %s", rep.Summary())
	}
}

func TestMerge(t *testing.T) {
	old := mapping([]asnum.ASN{1, 2}, []asnum.ASN{3, 4}, []asnum.ASN{5})
	rep := Compare(old, mapping([]asnum.ASN{1, 2, 3, 4}, []asnum.ASN{5}))
	if rep.Merges != 1 || rep.Stable != 1 {
		t.Fatalf("report = %s", rep.Summary())
	}
	merges := rep.MergesOf()
	if len(merges) != 1 || len(merges[0].Sources) != 2 {
		t.Fatalf("merges = %+v", merges)
	}
	if len(merges[0].Members) != 4 {
		t.Errorf("merge members = %v", merges[0].Members)
	}
}

func TestSplit(t *testing.T) {
	old := mapping([]asnum.ASN{1, 2, 3})
	rep := Compare(old, mapping([]asnum.ASN{1, 2}, []asnum.ASN{3}))
	if rep.Splits != 2 {
		t.Errorf("report = %s", rep.Summary())
	}
	if rep.MovedASNs != 3 {
		t.Errorf("moved = %d", rep.MovedASNs)
	}
}

func TestReshuffle(t *testing.T) {
	old := mapping([]asnum.ASN{1, 2}, []asnum.ASN{3, 4})
	// 2 moves from the first org into the second's successor.
	rep := Compare(old, mapping([]asnum.ASN{1}, []asnum.ASN{2, 3, 4}))
	if rep.Reshuffles != 1 || rep.Splits != 1 {
		t.Errorf("report = %s", rep.Summary())
	}
}

func TestAppearedAndDeparted(t *testing.T) {
	old := mapping([]asnum.ASN{1}, []asnum.ASN{9})
	rep := Compare(old, mapping([]asnum.ASN{1}, []asnum.ASN{7}))
	if rep.Appeared != 1 || rep.Departed != 1 || rep.Stable != 1 {
		t.Errorf("report = %s", rep.Summary())
	}
	foundDeparted := false
	for _, c := range rep.Changes {
		if c.Kind == Departed && len(c.Members) == 1 && c.Members[0] == 9 {
			foundDeparted = true
		}
	}
	if !foundDeparted {
		t.Error("departed org 9 not reported")
	}
}

// TestLevel3Timeline replays the Figure 1 story as mapping transitions.
func TestLevel3Timeline(t *testing.T) {
	y2010 := mapping([]asnum.ASN{3356}, []asnum.ASN{3549}, []asnum.ASN{209}, []asnum.ASN{3909})
	y2011 := mapping([]asnum.ASN{3356, 3549}, []asnum.ASN{209}, []asnum.ASN{3909})
	y2017 := mapping([]asnum.ASN{3356, 3549, 209, 3909})
	y2022 := mapping([]asnum.ASN{3356, 209, 3909}, []asnum.ASN{3549})

	rep := Compare(y2010, y2011)
	if rep.Merges != 1 {
		t.Errorf("2010→2011: %s", rep.Summary())
	}
	rep = Compare(y2011, y2017)
	if rep.Merges != 1 || len(rep.MergesOf()[0].Sources) != 3 {
		t.Errorf("2011→2017: %s", rep.Summary())
	}
	rep = Compare(y2017, y2022)
	if rep.Splits != 2 { // both fragments are split parts of the old org
		t.Errorf("2017→2022: %s", rep.Summary())
	}
}

func TestChangeKindString(t *testing.T) {
	for _, k := range []ChangeKind{Stable, Merge, Split, Reshuffle, Appeared, Departed, ChangeKind(99)} {
		if k.String() == "" {
			t.Errorf("kind %d renders empty", k)
		}
	}
}

func TestSummaryContainsCounts(t *testing.T) {
	rep := Compare(mapping([]asnum.ASN{1, 2}), mapping([]asnum.ASN{1}, []asnum.ASN{2}))
	s := rep.Summary()
	if s == "" || rep.Splits != 2 {
		t.Errorf("summary = %q, report = %+v", s, rep)
	}
}
