// Package mapdiff compares two AS-to-Organization mappings and
// classifies how organizations changed between them: merges,
// splits, membership moves, and stable organizations.
//
// The paper's discussion (§7) notes that no longitudinal archive of
// PeeringDB-referenced websites exists, which prevents studying how
// organizational structures evolve over time. This package provides the
// analysis layer for exactly that study once successive mappings are
// available — e.g. the Level3 → Lumen → Cirion timeline of Figure 1,
// reproduced in examples/mergers — and also quantifies how one method's
// mapping differs from another's over the same snapshot (Borges vs
// AS2Org).
package mapdiff

import (
	"fmt"
	"sort"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

// ChangeKind classifies one organization transition.
type ChangeKind uint8

// Change kinds.
const (
	// Stable: the organization has exactly the same member set.
	Stable ChangeKind = iota
	// Merge: the new organization unites two or more old ones.
	Merge
	// Split: an old organization's members are spread over several new
	// ones.
	Split
	// Reshuffle: members moved between organizations in a way that is
	// neither a clean merge nor a clean split.
	Reshuffle
	// Appeared: members exist only in the new mapping.
	Appeared
	// Departed: members exist only in the old mapping.
	Departed
)

// String implements fmt.Stringer.
func (k ChangeKind) String() string {
	switch k {
	case Stable:
		return "stable"
	case Merge:
		return "merge"
	case Split:
		return "split"
	case Reshuffle:
		return "reshuffle"
	case Appeared:
		return "appeared"
	case Departed:
		return "departed"
	default:
		return fmt.Sprintf("ChangeKind(%d)", uint8(k))
	}
}

// Change describes one new-mapping organization relative to the old
// mapping (or, for Departed, one old organization with no successor).
type Change struct {
	Kind ChangeKind
	// Name is the organization's display name (new side if present).
	Name string
	// Members are the networks of the organization being described.
	Members []asnum.ASN
	// Sources are the old organizations contributing members, largest
	// first (by contributed member count).
	Sources []Source
}

// Source is one old organization's contribution to a new one.
type Source struct {
	Name    string
	Members []asnum.ASN
}

// Report summarises a comparison.
type Report struct {
	Changes []Change
	// Counts per kind.
	Stable, Merges, Splits, Reshuffles, Appeared, Departed int
	// MovedASNs counts networks whose organization identity changed
	// (they gained or lost at least one sibling).
	MovedASNs int
}

// Summary renders the headline counts.
func (r *Report) Summary() string {
	return fmt.Sprintf("stable=%d merges=%d splits=%d reshuffles=%d appeared=%d departed=%d moved-ASNs=%d",
		r.Stable, r.Merges, r.Splits, r.Reshuffles, r.Appeared, r.Departed, r.MovedASNs)
}

// Compare analyses the transition old → new.
func Compare(old, new *cluster.Mapping) *Report {
	rep := &Report{}

	oldOf := make(map[asnum.ASN]*cluster.Cluster)
	for i := range old.Clusters {
		for _, a := range old.Clusters[i].ASNs {
			oldOf[a] = &old.Clusters[i]
		}
	}
	newOf := make(map[asnum.ASN]*cluster.Cluster)
	for i := range new.Clusters {
		for _, a := range new.Clusters[i].ASNs {
			newOf[a] = &new.Clusters[i]
		}
	}

	// Old organizations touched by each new organization, and the set
	// of old organizations fully consumed.
	consumedBy := make(map[int]map[int]bool) // old cluster ID -> new cluster IDs touching it

	for ni := range new.Clusters {
		nc := &new.Clusters[ni]
		bySource := make(map[*cluster.Cluster][]asnum.ASN)
		var appeared []asnum.ASN
		for _, a := range nc.ASNs {
			if oc, ok := oldOf[a]; ok {
				bySource[oc] = append(bySource[oc], a)
				if consumedBy[oc.ID] == nil {
					consumedBy[oc.ID] = make(map[int]bool)
				}
				consumedBy[oc.ID][nc.ID] = true
			} else {
				appeared = append(appeared, a)
			}
		}

		ch := Change{Name: nc.Name, Members: nc.ASNs}
		for oc, members := range bySource {
			asnum.Sort(members)
			ch.Sources = append(ch.Sources, Source{Name: oc.Name, Members: members})
		}
		sort.Slice(ch.Sources, func(i, j int) bool {
			if len(ch.Sources[i].Members) != len(ch.Sources[j].Members) {
				return len(ch.Sources[i].Members) > len(ch.Sources[j].Members)
			}
			return ch.Sources[i].Members[0] < ch.Sources[j].Members[0]
		})

		switch {
		case len(bySource) == 0:
			ch.Kind = Appeared
			rep.Appeared++
			rep.MovedASNs += len(appeared)
		case len(bySource) == 1 && len(appeared) == 0:
			// One source: stable if the source contributed everything
			// it has; a split fragment otherwise.
			var src *cluster.Cluster
			for oc := range bySource {
				src = oc
			}
			if len(bySource[src]) == len(src.ASNs) && len(nc.ASNs) == len(src.ASNs) {
				ch.Kind = Stable
				rep.Stable++
			} else {
				ch.Kind = Split
				rep.Splits++
				rep.MovedASNs += len(nc.ASNs)
			}
		default:
			// Multiple sources: a clean merge consumes each source
			// entirely; anything else is a reshuffle.
			clean := len(appeared) == 0
			for oc, members := range bySource {
				if len(members) != len(oc.ASNs) {
					clean = false
					break
				}
			}
			if clean {
				ch.Kind = Merge
				rep.Merges++
			} else {
				ch.Kind = Reshuffle
				rep.Reshuffles++
			}
			rep.MovedASNs += len(nc.ASNs)
		}
		rep.Changes = append(rep.Changes, ch)
	}

	// Old organizations with no members in the new mapping departed.
	for oi := range old.Clusters {
		oc := &old.Clusters[oi]
		if consumedBy[oc.ID] == nil {
			anyPresent := false
			for _, a := range oc.ASNs {
				if _, ok := newOf[a]; ok {
					anyPresent = true
					break
				}
			}
			if !anyPresent {
				rep.Departed++
				rep.MovedASNs += len(oc.ASNs)
				rep.Changes = append(rep.Changes, Change{
					Kind: Departed, Name: oc.Name, Members: oc.ASNs,
				})
			}
		}
	}
	return rep
}

// MergesOf returns the merge changes sorted by descending member count
// — the headline consolidations of a transition.
func (r *Report) MergesOf() []Change {
	var out []Change
	for _, c := range r.Changes {
		if c.Kind == Merge {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	return out
}
