package mapdiff

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

func TestComputeDeltaIdentical(t *testing.T) {
	old := mapping([]asnum.ASN{1, 2}, []asnum.ASN{3})
	d := ComputeDelta(old, mapping([]asnum.ASN{1, 2}, []asnum.ASN{3}))
	if !d.Empty() {
		t.Fatalf("identical mappings produced %s", d.Summary())
	}
}

func TestComputeDeltaMerge(t *testing.T) {
	old := mapping([]asnum.ASN{1, 2}, []asnum.ASN{3, 4}, []asnum.ASN{5})
	d := ComputeDelta(old, mapping([]asnum.ASN{1, 2, 3, 4}, []asnum.ASN{5}))
	if len(d.Removed) != 2 || len(d.Added) != 1 {
		t.Fatalf("merge delta = %s", d.Summary())
	}
	if got := d.Added[0].ASNs; !reflect.DeepEqual(got, []asnum.ASN{1, 2, 3, 4}) {
		t.Fatalf("added members = %v", got)
	}
	// Removals keep the base mapping's deterministic cluster order.
	if d.Removed[0][0] != 1 || d.Removed[1][0] != 3 {
		t.Fatalf("removals out of order: %v", d.Removed)
	}
}

// A rename with unchanged membership is still an edit: rendered bodies
// and search tokens change.
func TestComputeDeltaRename(t *testing.T) {
	b := cluster.NewBuilder()
	b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{1, 2}})
	old := b.Build(func([]asnum.ASN) string { return "Before" })
	b2 := cluster.NewBuilder()
	b2.Add(cluster.SiblingSet{ASNs: []asnum.ASN{1, 2}})
	new := b2.Build(func([]asnum.ASN) string { return "After" })
	d := ComputeDelta(old, new)
	if len(d.Removed) != 1 || len(d.Added) != 1 || d.Added[0].Name != "After" {
		t.Fatalf("rename delta = %+v", d)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	old := mapping([]asnum.ASN{1, 2}, []asnum.ASN{3, 4}, []asnum.ASN{5})
	new := mapping([]asnum.ASN{1, 2, 3, 4}, []asnum.ASN{5})
	d := ComputeDelta(old, new)
	var buf bytes.Buffer
	if err := WriteDelta(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDelta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Removed, d.Removed) {
		t.Fatalf("removed drift: %v vs %v", got.Removed, d.Removed)
	}
	if len(got.Added) != len(d.Added) {
		t.Fatalf("added drift: %d vs %d", len(got.Added), len(d.Added))
	}
	for i := range got.Added {
		g, w := got.Added[i], d.Added[i]
		if g.Name != w.Name || !reflect.DeepEqual(g.ASNs, w.ASNs) || g.Features != w.Features {
			t.Fatalf("added[%d] drift: %+v vs %+v", i, g, w)
		}
	}
}

func TestReadDeltaNormalizes(t *testing.T) {
	in := `{"op":"add","name":"X","asns":[9,3,3,7]}
{"op":"del","asns":[5,1,5]}
`
	d, err := ReadDelta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Added[0].ASNs, []asnum.ASN{3, 7, 9}) {
		t.Fatalf("add not sorted/deduped: %v", d.Added[0].ASNs)
	}
	if !reflect.DeepEqual(d.Removed[0], []asnum.ASN{1, 5}) {
		t.Fatalf("del not sorted/deduped: %v", d.Removed[0])
	}
	// Feature-less adds default to OID_W like cluster.ReadJSONL.
	if !d.Added[0].Features[cluster.FeatureOIDW] {
		t.Fatal("feature-less add did not default to OID_W")
	}
}

func TestReadDeltaErrors(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"unknown op", `{"op":"mv","asns":[1]}`, "unknown op"},
		{"empty asns", `{"op":"del","asns":[]}`, "without members"},
		{"bad feature", `{"op":"add","asns":[1],"features":["NOPE"]}`, "unknown feature"},
		{"bad json", `{`, "line 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadDelta(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ReadDelta = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestDeltaJSONRoundTrip covers the single-object wire form used by
// /v1/watch events: Marshal → Unmarshal must reproduce the delta
// exactly (member order, duplicate-free or not, feature sets), with
// cluster IDs — which do not travel — decoded as zero.
func TestDeltaJSONRoundTrip(t *testing.T) {
	old := mapping([]asnum.ASN{1, 2}, []asnum.ASN{3, 4}, []asnum.ASN{5})
	new := mapping([]asnum.ASN{1, 2, 3, 4}, []asnum.ASN{5})
	d := ComputeDelta(old, new)
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var got Delta
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Removed, d.Removed) {
		t.Fatalf("removed drift: %v vs %v", got.Removed, d.Removed)
	}
	if len(got.Added) != len(d.Added) {
		t.Fatalf("added drift: %d vs %d", len(got.Added), len(d.Added))
	}
	for i := range got.Added {
		g, w := got.Added[i], d.Added[i]
		if g.ID != 0 {
			t.Errorf("added[%d] decoded ID = %d, want 0 (IDs are not wire data)", i, g.ID)
		}
		if g.Name != w.Name || !reflect.DeepEqual(g.ASNs, w.ASNs) || g.Features != w.Features {
			t.Fatalf("added[%d] drift: %+v vs %+v", i, g, w)
		}
	}
	// A second round-trip of the decoded value is byte-stable.
	raw2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatalf("re-marshal drifted:\n  %s\n  %s", raw, raw2)
	}
}

// TestDeltaJSONEmpty keeps the empty delta's wire form explicit — a
// watch client must see [] rather than null.
func TestDeltaJSONEmpty(t *testing.T) {
	raw, err := json.Marshal(&Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"removed":[],"added":[]}` {
		t.Fatalf("empty delta wire form = %s", raw)
	}
	var got Delta
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Empty() {
		t.Fatalf("decoded empty delta not empty: %+v", got)
	}
}

// TestDeltaJSONRejectsUnknownFeature: feature names are a closed set.
func TestDeltaJSONRejectsUnknownFeature(t *testing.T) {
	in := `{"removed":[],"added":[{"name":"X","asns":[1],"features":["NOPE"]}]}`
	var got Delta
	if err := json.Unmarshal([]byte(in), &got); err == nil {
		t.Fatal("unknown feature name decoded without error")
	}
}
