package mapdiff

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
)

// Delta is the machine-applicable form of a mapping transition: the
// organizations to remove from a base mapping and the organizations
// to add, with everything untouched left implicit. Where Report
// narrates a transition for humans (merges, splits, reshuffles), a
// Delta is the minimal edit script an incremental reload applies —
// a changed organization appears as one removal plus one addition.
type Delta struct {
	// Removed holds the full member list of each base organization
	// that does not survive unchanged. Carrying the whole list (not
	// just an identifying member) lets the applier verify the delta
	// matches its base and fail loudly on a mismatch.
	Removed [][]asnum.ASN
	// Added holds each organization present only in the new mapping:
	// members, display name, and feature provenance. IDs are not
	// recorded — the applier re-derives canonical IDs, so a patched
	// mapping is identical to a from-scratch build.
	Added []cluster.Cluster
}

// Empty reports whether the delta changes nothing.
func (d *Delta) Empty() bool { return len(d.Removed) == 0 && len(d.Added) == 0 }

// Summary renders the headline edit counts.
func (d *Delta) Summary() string {
	return fmt.Sprintf("removed=%d added=%d", len(d.Removed), len(d.Added))
}

// deltaWire is the single-document JSON form of a Delta, used by the
// /v1/watch event stream and the Go client. Unlike the JSONL file
// format (WriteDelta/ReadDelta), it is one object, preserves features
// exactly (no OID_W defaulting on decode), and still omits cluster
// IDs — the applier re-derives them.
type deltaWire struct {
	Removed [][]uint32       `json:"removed"`
	Added   []deltaWireAdded `json:"added"`
}

type deltaWireAdded struct {
	Name     string   `json:"name,omitempty"`
	ASNs     []uint32 `json:"asns"`
	Features []string `json:"features,omitempty"`
}

// MarshalJSON renders the delta as a single JSON object with explicit
// (possibly empty) removed/added arrays, so an empty delta is
// `{"removed":[],"added":[]}` rather than nulls.
func (d *Delta) MarshalJSON() ([]byte, error) {
	w := deltaWire{
		Removed: make([][]uint32, len(d.Removed)),
		Added:   make([]deltaWireAdded, len(d.Added)),
	}
	for i, members := range d.Removed {
		row := make([]uint32, len(members))
		for j, a := range members {
			row[j] = uint32(a)
		}
		w.Removed[i] = row
	}
	for i := range d.Added {
		c := &d.Added[i]
		rec := deltaWireAdded{Name: c.Name, ASNs: make([]uint32, len(c.ASNs))}
		for j, a := range c.ASNs {
			rec.ASNs[j] = uint32(a)
		}
		for f := 0; f < cluster.NumFeatures; f++ {
			if c.Features[f] {
				rec.Features = append(rec.Features, cluster.Feature(f).String())
			}
		}
		w.Added[i] = rec
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses the MarshalJSON form. Decoding is exact — no
// sorting, deduplication, or feature defaulting — so a marshal/
// unmarshal round-trip is deep-equal to the original delta (IDs
// excepted: they are never on the wire and decode as zero).
func (d *Delta) UnmarshalJSON(data []byte) error {
	var w deltaWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("mapdiff: delta json: %w", err)
	}
	*d = Delta{}
	for _, row := range w.Removed {
		members := make([]asnum.ASN, len(row))
		for j, a := range row {
			members[j] = asnum.ASN(a)
		}
		d.Removed = append(d.Removed, members)
	}
	for _, rec := range w.Added {
		c := cluster.Cluster{Name: rec.Name, ASNs: make([]asnum.ASN, len(rec.ASNs))}
		for j, a := range rec.ASNs {
			c.ASNs[j] = asnum.ASN(a)
		}
		for _, fs := range rec.Features {
			f, err := featureByName(fs)
			if err != nil {
				return fmt.Errorf("mapdiff: delta json: %w", err)
			}
			c.Features[f] = true
		}
		d.Added = append(d.Added, c)
	}
	return nil
}

// clusterKey fingerprints an organization by everything that makes it
// "the same" across mappings: members, display name, and features.
func clusterKey(c *cluster.Cluster) string {
	var b strings.Builder
	b.Grow(8*len(c.ASNs) + len(c.Name) + 8)
	for _, a := range c.ASNs {
		fmt.Fprintf(&b, "%d,", uint32(a))
	}
	b.WriteByte(0)
	b.WriteString(c.Name)
	b.WriteByte(0)
	for f := 0; f < cluster.NumFeatures; f++ {
		if c.Features[f] {
			b.WriteByte('0' + byte(f))
		}
	}
	return b.String()
}

// ComputeDelta returns the edit script transforming old into new:
// every old organization without an identical counterpart in new is
// removed, every new organization without an identical counterpart in
// old is added. Identity covers members, name, and features — a
// renamed organization with unchanged membership is still an edit,
// because its serving artifacts (rendered bodies, search tokens)
// change.
func ComputeDelta(old, new *cluster.Mapping) *Delta {
	oldKeys := make(map[string]int, len(old.Clusters))
	for i := range old.Clusters {
		oldKeys[clusterKey(&old.Clusters[i])]++
	}
	d := &Delta{}
	for i := range new.Clusters {
		k := clusterKey(&new.Clusters[i])
		if oldKeys[k] > 0 {
			oldKeys[k]--
			continue
		}
		d.Added = append(d.Added, new.Clusters[i])
	}
	// A second pass over old collects removals in old's deterministic
	// cluster order (the map above only counts).
	newKeys := make(map[string]int, len(new.Clusters))
	for i := range new.Clusters {
		newKeys[clusterKey(&new.Clusters[i])]++
	}
	for i := range old.Clusters {
		k := clusterKey(&old.Clusters[i])
		if newKeys[k] > 0 {
			newKeys[k]--
			continue
		}
		d.Removed = append(d.Removed, old.Clusters[i].ASNs)
	}
	return d
}

// deltaRecord is the on-disk JSON-lines form of one delta edit:
//
//	{"op":"del","asns":[3356,3549]}
//	{"op":"add","name":"Lumen","asns":[209,3356,3549],"features":["OID_W"]}
type deltaRecord struct {
	Op       string   `json:"op"`
	Name     string   `json:"name,omitempty"`
	ASNs     []uint32 `json:"asns"`
	Features []string `json:"features,omitempty"`
}

// WriteDelta serializes a delta as JSON lines, removals first.
func WriteDelta(w io.Writer, d *Delta) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, members := range d.Removed {
		rec := deltaRecord{Op: "del", ASNs: make([]uint32, len(members))}
		for i, a := range members {
			rec.ASNs[i] = uint32(a)
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("mapdiff: write delta: %w", err)
		}
	}
	for i := range d.Added {
		c := &d.Added[i]
		rec := deltaRecord{Op: "add", Name: c.Name, ASNs: make([]uint32, len(c.ASNs))}
		for j, a := range c.ASNs {
			rec.ASNs[j] = uint32(a)
		}
		for f := 0; f < cluster.NumFeatures; f++ {
			if c.Features[f] {
				rec.Features = append(rec.Features, cluster.Feature(f).String())
			}
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("mapdiff: write delta: %w", err)
		}
	}
	return bw.Flush()
}

// ReadDelta parses a delta written with WriteDelta. Added records
// with no recorded features default to OID_W, matching how
// cluster.ReadJSONL treats feature-less mapping records, so applying
// a hand-written delta and rebuilding from the equivalent full file
// agree on provenance bits.
func ReadDelta(r io.Reader) (*Delta, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	d := &Delta{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec deltaRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("mapdiff: delta line %d: %w", line, err)
		}
		if len(rec.ASNs) == 0 {
			return nil, fmt.Errorf("mapdiff: delta line %d: %s without members", line, rec.Op)
		}
		asns := make([]asnum.ASN, len(rec.ASNs))
		for i, a := range rec.ASNs {
			asns[i] = asnum.ASN(a)
		}
		asnum.Sort(asns)
		// Collapse duplicates the way a union-find replay would.
		uniq := asns[:1]
		for _, a := range asns[1:] {
			if a != uniq[len(uniq)-1] {
				uniq = append(uniq, a)
			}
		}
		asns = uniq
		switch rec.Op {
		case "del":
			d.Removed = append(d.Removed, asns)
		case "add":
			c := cluster.Cluster{Name: rec.Name, ASNs: asns}
			if len(rec.Features) == 0 {
				c.Features[cluster.FeatureOIDW] = true
			}
			for _, fs := range rec.Features {
				f, err := featureByName(fs)
				if err != nil {
					return nil, fmt.Errorf("mapdiff: delta line %d: %w", line, err)
				}
				c.Features[f] = true
			}
			d.Added = append(d.Added, c)
		default:
			return nil, fmt.Errorf("mapdiff: delta line %d: unknown op %q", line, rec.Op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mapdiff: delta scan: %w", err)
	}
	return d, nil
}

// featureByName inverts cluster.Feature.String for parsing.
func featureByName(s string) (cluster.Feature, error) {
	for f := 0; f < cluster.NumFeatures; f++ {
		if cluster.Feature(f).String() == s {
			return cluster.Feature(f), nil
		}
	}
	return 0, fmt.Errorf("unknown feature %q", s)
}
