package mapdiff

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadDelta feeds arbitrary bytes through the delta parser — the
// one decoder in this repo that consumes network-supplied edit scripts
// directly (a replica reads them off the distributor's wire). The
// parser must never panic; it either reports an error cleanly or
// returns a delta that survives a write/read round trip unchanged.
func FuzzReadDelta(f *testing.F) {
	// A well-formed script produced by WriteDelta itself.
	var valid bytes.Buffer
	d := &Delta{}
	if err := WriteDelta(&valid, d); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{"op":"del","asns":[3356,3549]}` + "\n" +
		`{"op":"add","name":"Lumen","asns":[209,3356,3549],"features":["OID_W"]}` + "\n"))
	// Truncated mid-record: a torn transfer's worth of bytes.
	f.Add([]byte(`{"op":"del","asns":[3356,3549]}` + "\n" + `{"op":"add","na`))
	// Structural garbage and hostile shapes.
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"op":"resurrect","asns":[1]}`))
	f.Add([]byte(`{"op":"add","name":"x","asns":[]}`))
	f.Add([]byte(`{"op":"add","name":"x","asns":[1],"features":["NO_SUCH"]}`))
	f.Add([]byte(`{"op":"del","asns":[4294967295,0,0,1]}`))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{0x00, 0xff, 0x7b, 0x22})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDelta(bytes.NewReader(data))
		if err != nil {
			return // clean rejection is a correct outcome
		}
		// Accepted input must round-trip: what WriteDelta emits for the
		// parsed delta parses back to the same delta. This pins the
		// normalizations ReadDelta performs (ASN sort + dedup, default
		// feature) as idempotent — a delta relayed through a replica
		// chain cannot drift.
		var buf bytes.Buffer
		if err := WriteDelta(&buf, d); err != nil {
			t.Fatalf("WriteDelta on accepted delta: %v", err)
		}
		d2, err := ReadDelta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written delta: %v", err)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("round trip drifted:\n first: %+v\nsecond: %+v", d, d2)
		}
	})
}
