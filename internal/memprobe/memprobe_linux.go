//go:build linux

package memprobe

import (
	"bytes"
	"os"
	"strconv"
)

// peakRSS parses the VmHWM line of /proc/self/status, which the kernel
// reports in kibibytes.
func peakRSS() (int64, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0, false
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}

// resetPeak writes "5" to /proc/self/clear_refs, which resets VmHWM to
// the current RSS (Linux >= 4.0). Some sandboxes mount /proc
// read-only; the caller degrades to lifetime-peak reporting.
func resetPeak() bool {
	return os.WriteFile("/proc/self/clear_refs", []byte("5"), 0) == nil
}
