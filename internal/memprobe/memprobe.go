// Package memprobe measures process peak memory (high-water RSS) for
// the mega-scale benchmarks. On Linux it reads VmHWM from
// /proc/self/status and can reset the kernel's high-water mark between
// measured phases via /proc/self/clear_refs, so each phase reports its
// own peak rather than the run's running maximum. Elsewhere both
// operations report unsupported and callers fall back to Go-heap
// accounting.
package memprobe

// PeakRSS returns the process's high-water resident set size in bytes.
// ok is false when the platform cannot report it.
func PeakRSS() (bytes int64, ok bool) { return peakRSS() }

// ResetPeak zeroes the high-water mark so the next PeakRSS reflects
// only allocations after this call. It reports whether the reset took
// effect; when false, PeakRSS still reports the process-lifetime peak.
func ResetPeak() bool { return resetPeak() }
