//go:build !linux

package memprobe

func peakRSS() (int64, bool) { return 0, false }

func resetPeak() bool { return false }
