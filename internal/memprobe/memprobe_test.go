package memprobe

import (
	"runtime"
	"testing"
)

func TestPeakRSS(t *testing.T) {
	rss, ok := PeakRSS()
	if runtime.GOOS != "linux" {
		if ok {
			t.Fatalf("PeakRSS reported ok on %s", runtime.GOOS)
		}
		return
	}
	if !ok {
		t.Skip("VmHWM unavailable (restricted /proc)")
	}
	if rss <= 0 {
		t.Fatalf("peak RSS %d, want > 0", rss)
	}
	// A live Go process holds at least a few hundred KiB resident.
	if rss < 100<<10 {
		t.Fatalf("peak RSS %d implausibly small", rss)
	}
}

func TestResetPeak(t *testing.T) {
	if !ResetPeak() {
		t.Skip("clear_refs unavailable (read-only /proc or non-Linux)")
	}
	rss, ok := PeakRSS()
	if !ok || rss <= 0 {
		t.Fatalf("PeakRSS after reset: %d, %v", rss, ok)
	}
}
