package borges_test

import (
	"context"
	"fmt"

	borges "github.com/nu-aqualab/borges"
)

// ExampleRun executes the full pipeline on a small synthetic corpus and
// verifies the flagship web-inference merger.
func ExampleRun() {
	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 7, Scale: 0.02})
	if err != nil {
		panic(err)
	}
	res, err := borges.Run(context.Background(), borges.Inputs{
		WHOIS:     ds.WHOIS,
		PDB:       ds.PDB,
		Transport: ds.Web,
		Provider:  borges.NewSimulatedLLM(),
	}, borges.Options{})
	if err != nil {
		panic(err)
	}
	edgecast, _ := borges.ParseASN("AS15133")
	limelight, _ := borges.ParseASN("AS22822")
	fmt.Println("merged via edg.io:", res.Mapping.ClusterOf(edgecast) == res.Mapping.ClusterOf(limelight))
	// Output:
	// merged via edg.io: true
}

// ExampleTheta computes the Organization Factor for the two hypothetical
// extremes the paper uses to define the metric (§5.4).
func ExampleTheta() {
	w := borges.NewWHOISSnapshot("20240701")
	// Four networks, each its own organization: θ = 0.
	for i := 1; i <= 4; i++ {
		id := fmt.Sprintf("ORG-%d", i)
		w.AddOrg(borges.WHOISOrg{ID: id, Name: id})
		w.AddAS(borges.WHOISASRecord{ASN: borges.ASN(i), OrgID: id})
	}
	theta, _ := borges.Theta(borges.AS2Org(w))
	fmt.Printf("all singletons: θ = %.2f\n", theta)

	// The same four networks under one organization: θ → 1.
	one := borges.NewWHOISSnapshot("20240701")
	one.AddOrg(borges.WHOISOrg{ID: "ORG", Name: "One Org"})
	for i := 1; i <= 4; i++ {
		one.AddAS(borges.WHOISASRecord{ASN: borges.ASN(i), OrgID: "ORG"})
	}
	theta, _ = borges.Theta(borges.AS2Org(one))
	fmt.Printf("single organization: θ = %.2f\n", theta)
	// Output:
	// all singletons: θ = 0.00
	// single organization: θ = 0.75
}

// ExampleCompareMappings diffs a registry-only mapping against one with
// an acquisition applied.
func ExampleCompareMappings() {
	w := borges.NewWHOISSnapshot("d")
	w.AddOrg(borges.WHOISOrg{ID: "A", Name: "Acquirer"})
	w.AddOrg(borges.WHOISOrg{ID: "B", Name: "Target"})
	w.AddAS(borges.WHOISASRecord{ASN: 100, OrgID: "A"})
	w.AddAS(borges.WHOISASRecord{ASN: 200, OrgID: "B"})
	before := borges.AS2Org(w)

	p := borges.NewPDBSnapshot("d")
	p.AddOrg(borges.PDBOrg{ID: 1, Name: "Acquirer"})
	p.AddNet(borges.PDBNet{ID: 1, OrgID: 1, ASN: 100})
	p.AddNet(borges.PDBNet{ID: 2, OrgID: 1, ASN: 200})
	after := borges.AS2OrgPlus(w, p)

	diff := borges.CompareMappings(before, after)
	fmt.Println(diff.Summary())
	// Output:
	// stable=0 merges=1 splits=0 reshuffles=0 appeared=0 departed=0 moved-ASNs=2
}

// ExampleParseASN shows the accepted spellings, including RFC 5396
// asdot notation.
func ExampleParseASN() {
	for _, s := range []string{"AS3356", "asn 174", "65546", "AS1.10"} {
		a, err := borges.ParseASN(s)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s → %s (asdot %s)\n", s, a, a.AsDot())
	}
	// Output:
	// AS3356   → AS3356 (asdot 3356)
	// asn 174  → AS174 (asdot 174)
	// 65546    → AS65546 (asdot 1.10)
	// AS1.10   → AS65546 (asdot 1.10)
}
