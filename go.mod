module github.com/nu-aqualab/borges

go 1.22
