// Benchmarks for the overlapped pipeline and the content-addressed
// cache: cold vs warm full runs, crawl-level dedup of duplicate URLs,
// and a 16-cell ablation grid sharing one cache. Besides the standard
// -bench output, these benches append machine-readable observations
// that TestMain serializes to BENCH_pipeline.json, so CI smoke runs
// leave a comparable artifact.
//
//	go test -run=NONE -bench='ColdVsWarm|DuplicateURLs|AblationGrid' -benchtime=1x
package borges_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"

	borges "github.com/nu-aqualab/borges"
	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/crawler"
	"github.com/nu-aqualab/borges/internal/websim"
)

// benchRecord is one serialized benchmark observation.
type benchRecord struct {
	Name    string             `json:"name"`
	N       int                `json:"n"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

var (
	benchRecMu sync.Mutex
	benchRecs  []benchRecord
)

// recordBench snapshots a finished benchmark's timing plus extra
// metrics for the BENCH_pipeline.json artifact.
func recordBench(b *testing.B, metrics map[string]float64) {
	benchRecMu.Lock()
	defer benchRecMu.Unlock()
	r := benchRecord{Name: b.Name(), N: b.N, Metrics: metrics}
	if b.N > 0 {
		r.NsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	}
	benchRecs = append(benchRecs, r)
}

func TestMain(m *testing.M) {
	code := m.Run()
	benchRecMu.Lock()
	recs := benchRecs
	benchRecMu.Unlock()
	if len(recs) > 0 {
		sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
		blob, err := json.MarshalIndent(struct {
			Benchmarks []benchRecord `json:"benchmarks"`
		}{recs}, "", "  ")
		if err == nil {
			blob = append(blob, '\n')
			err = os.WriteFile("BENCH_pipeline.json", blob, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "writing BENCH_pipeline.json:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

func pipelineInputs(b *testing.B, ds *borges.Dataset) borges.Inputs {
	b.Helper()
	return borges.Inputs{
		WHOIS:     ds.WHOIS,
		PDB:       ds.PDB,
		Transport: ds.Web,
		Provider:  borges.NewSimulatedLLM(),
	}
}

// BenchmarkRunColdVsWarm contrasts a full-feature run that starts with
// an empty cache against one whose cache was primed by a previous run.
// The warm runs replay every LLM completion and crawl outcome from the
// cache, so the gap is the cost the cache removes from re-runs.
func BenchmarkRunColdVsWarm(b *testing.B) {
	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 1, Scale: pipelineScale})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			store, err := borges.NewCache(borges.CacheOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := borges.Run(ctx, pipelineInputs(b, ds), borges.Options{Cache: store}); err != nil {
				b.Fatal(err)
			}
		}
		recordBench(b, nil)
	})

	b.Run("warm", func(b *testing.B) {
		store, err := borges.NewCache(borges.CacheOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := borges.Run(ctx, pipelineInputs(b, ds), borges.Options{Cache: store}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := borges.Run(ctx, pipelineInputs(b, ds), borges.Options{Cache: store}); err != nil {
				b.Fatal(err)
			}
		}
		st := store.Stats()
		recordBench(b, map[string]float64{
			"cache_hits":   float64(st.Hits),
			"cache_misses": float64(st.Misses),
		})
	})
}

// BenchmarkCrawlDuplicateURLs measures CrawlAll over a task list where
// every site is reported through three URL spellings; the per-op
// transport request count shows one fetch per unique canonical URL.
func BenchmarkCrawlDuplicateURLs(b *testing.B) {
	u := websim.New()
	var tasks []crawler.Task
	const sites = 8
	for i := 0; i < sites; i++ {
		host := fmt.Sprintf("www.site%d.example", i)
		u.AddSite(host, fmt.Sprintf("icon%d", i%3))
		tasks = append(tasks,
			crawler.Task{ASN: asnum.ASN(3*i + 1), URL: "https://" + host},
			crawler.Task{ASN: asnum.ASN(3*i + 2), URL: "https://" + host + "/"},
			crawler.Task{ASN: asnum.ASN(3*i + 3), URL: host},
		)
	}
	u.ResetRequests()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := crawler.New(crawler.Options{Transport: u, Concurrency: 8})
		res := c.CrawlAll(context.Background(), tasks)
		if len(res) != len(tasks) {
			b.Fatalf("got %d results for %d tasks", len(res), len(tasks))
		}
	}
	b.StopTimer()
	reqsPerOp := float64(u.Requests()) / float64(b.N)
	b.ReportMetric(reqsPerOp, "transport-reqs/op")
	recordBench(b, map[string]float64{
		"tasks":                 float64(len(tasks)),
		"unique_urls":           sites,
		"transport_reqs_per_op": reqsPerOp,
	})
}

// BenchmarkAblationGridSharedCache runs all 16 feature combinations
// over one shared cache, the way an evaluation sweep would: every LLM
// completion and crawl is paid for once across the whole grid.
func BenchmarkAblationGridSharedCache(b *testing.B) {
	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 1, Scale: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	store, err := borges.NewCache(borges.CacheOptions{})
	if err != nil {
		b.Fatal(err)
	}
	combos := make([]borges.Features, 0, 16)
	for i := 0; i < 16; i++ {
		combos = append(combos, borges.Features{
			OIDP:     i&1 != 0,
			NotesAka: i&2 != 0,
			RR:       i&4 != 0,
			Favicons: i&8 != 0,
		})
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range combos {
			f := combos[j]
			if _, err := borges.Run(ctx, pipelineInputs(b, ds), borges.Options{Features: &f, Cache: store}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	st := store.Stats()
	b.ReportMetric(float64(st.Hits)/float64(b.N), "cache-hits/op")
	recordBench(b, map[string]float64{
		"grid_cells":   16,
		"cache_hits":   float64(st.Hits),
		"cache_misses": float64(st.Misses),
		"cache_dedups": float64(st.Dedups),
	})
}
