package borges_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	borges "github.com/nu-aqualab/borges"
)

func smallDataset(t *testing.T) *borges.Dataset {
	t.Helper()
	ds, err := borges.GenerateDataset(borges.DatasetConfig{Seed: 7, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPublicPipeline(t *testing.T) {
	ds := smallDataset(t)
	res, err := borges.Run(context.Background(), borges.Inputs{
		WHOIS:     ds.WHOIS,
		PDB:       ds.PDB,
		Transport: ds.Web,
		Provider:  borges.NewSimulatedLLM(),
	}, borges.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.NumASNs() != ds.WHOIS.NumASNs() {
		t.Errorf("mapping covers %d ASNs, universe has %d",
			res.Mapping.NumASNs(), ds.WHOIS.NumASNs())
	}
	// Borges must outperform both baselines on θ.
	borgesTheta, err := borges.Theta(res.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	baseTheta, err := borges.Theta(borges.AS2Org(ds.WHOIS))
	if err != nil {
		t.Fatal(err)
	}
	plusTheta, err := borges.Theta(borges.AS2OrgPlus(ds.WHOIS, ds.PDB))
	if err != nil {
		t.Fatal(err)
	}
	if !(borgesTheta > plusTheta && plusTheta > baseTheta) {
		t.Errorf("theta ordering broken: borges=%v plus=%v base=%v",
			borgesTheta, plusTheta, baseTheta)
	}
	// The flagship merger: Edgecast and Limelight unify via edg.io.
	ec, _ := borges.ParseASN("AS15133")
	ll, _ := borges.ParseASN("AS22822")
	if res.Mapping.ClusterOf(ec) != res.Mapping.ClusterOf(ll) {
		t.Error("Edgecast and Limelight should share an organization under Borges")
	}
	if borges.AS2Org(ds.WHOIS).ClusterOf(ec) == borges.AS2Org(ds.WHOIS).ClusterOf(ll) {
		t.Error("AS2Org should keep Edgecast and Limelight apart")
	}
}

func TestPublicSnapshotRoundTrips(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := borges.WriteWHOIS(&buf, ds.WHOIS); err != nil {
		t.Fatal(err)
	}
	w2, err := borges.ParseWHOIS(bytes.NewReader(buf.Bytes()), ds.WHOIS.Date)
	if err != nil {
		t.Fatal(err)
	}
	if w2.NumASNs() != ds.WHOIS.NumASNs() {
		t.Error("WHOIS round trip lost records")
	}

	buf.Reset()
	if err := borges.WritePeeringDB(&buf, ds.PDB); err != nil {
		t.Fatal(err)
	}
	p2, err := borges.ParsePeeringDB(bytes.NewReader(buf.Bytes()), ds.PDB.Date)
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumNets() != ds.PDB.NumNets() {
		t.Error("PeeringDB round trip lost records")
	}

	buf.Reset()
	if err := borges.WriteAPNIC(&buf, ds.APNIC); err != nil {
		t.Fatal(err)
	}
	a2, err := borges.ParseAPNIC(bytes.NewReader(buf.Bytes()), ds.APNIC.Date)
	if err != nil {
		t.Fatal(err)
	}
	if a2.TotalUsers() != ds.APNIC.TotalUsers() {
		t.Error("APNIC round trip changed totals")
	}

	buf.Reset()
	if err := borges.WriteASRank(&buf, ds.ASRank); err != nil {
		t.Fatal(err)
	}
	r2, err := borges.ParseASRank(bytes.NewReader(buf.Bytes()), ds.ASRank.Date)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != ds.ASRank.Len() {
		t.Error("AS-Rank round trip lost entries")
	}
}

func TestPublicEvaluation(t *testing.T) {
	ds := smallDataset(t)
	ev, err := borges.PrepareEvaluation(context.Background(), ds, borges.NewSimulatedLLM())
	if err != nil {
		t.Fatal(err)
	}
	tables, err := ev.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 10 {
		t.Fatalf("expected 10 experiments, got %d", len(tables))
	}
	seen := map[string]bool{}
	for _, tab := range tables {
		if tab.ID == "" || len(tab.Rows) == 0 {
			t.Errorf("experiment %q rendered empty", tab.ID)
		}
		seen[tab.ID] = true
		if out := tab.Render(); !strings.Contains(out, tab.ID) {
			t.Errorf("Render missing ID header for %s", tab.ID)
		}
		if csv := tab.CSV(); !strings.Contains(csv, ",") {
			t.Errorf("CSV output malformed for %s", tab.ID)
		}
	}
	for _, id := range []string{"table3", "table4", "table5", "table6", "table7",
		"table8", "table9", "figure7", "figure8", "figure9"} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := ev.ByID("table6"); err != nil {
		t.Errorf("ByID(table6): %v", err)
	}
	if _, err := ev.ByID("nope"); err == nil {
		t.Error("ByID should reject unknown ids")
	}
}

func TestNewOpenAIProviderAgainstMock(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"model":"gpt-4o-mini","choices":[{"message":{"role":"assistant","content":"pong"}}]}`)
	}))
	defer srv.Close()
	p := borges.NewOpenAIProvider(srv.URL, "sk-test", srv.Client())
	resp, err := p.Complete(context.Background(), borges.LLMRequest{
		Model: "gpt-4o-mini",
		Messages: []borges.LLMMessage{
			{Role: borges.RoleUser, Content: "ping"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Content != "pong" {
		t.Errorf("content = %q", resp.Content)
	}
}
