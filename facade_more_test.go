package borges_test

import (
	"bytes"
	"context"
	"testing"

	borges "github.com/nu-aqualab/borges"
)

func TestFacadeWebUniverseRoundTrip(t *testing.T) {
	u := borges.NewWebUniverse()
	u.AddSite("a.test", "icon")
	u.RedirectHost("b.test", "https://a.test/")
	var buf bytes.Buffer
	if err := borges.WriteWebUniverse(&buf, u); err != nil {
		t.Fatal(err)
	}
	back, err := borges.ReadWebUniverse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSites() != u.NumSites() {
		t.Errorf("sites: %d vs %d", back.NumSites(), u.NumSites())
	}
}

func TestFacadeMappingRoundTripAndDiff(t *testing.T) {
	w := borges.NewWHOISSnapshot("d")
	w.AddOrg(borges.WHOISOrg{ID: "A", Name: "Org A"})
	w.AddOrg(borges.WHOISOrg{ID: "B", Name: "Org B"})
	w.AddAS(borges.WHOISASRecord{ASN: 1, OrgID: "A"})
	w.AddAS(borges.WHOISASRecord{ASN: 2, OrgID: "A"})
	w.AddAS(borges.WHOISASRecord{ASN: 3, OrgID: "B"})
	m := borges.AS2Org(w)

	var buf bytes.Buffer
	if err := borges.WriteMapping(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := borges.ReadMapping(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumOrgs() != m.NumOrgs() {
		t.Errorf("orgs: %d vs %d", back.NumOrgs(), m.NumOrgs())
	}

	// Merge everything into one org and diff.
	p := borges.NewPDBSnapshot("d")
	p.AddOrg(borges.PDBOrg{ID: 1, Name: "One"})
	p.AddNet(borges.PDBNet{ID: 1, OrgID: 1, ASN: 1})
	p.AddNet(borges.PDBNet{ID: 2, OrgID: 1, ASN: 3})
	merged := borges.AS2OrgPlus(w, p)
	diff := borges.CompareMappings(m, merged)
	if diff.Merges != 1 {
		t.Errorf("diff = %s", diff.Summary())
	}
	if got := diff.MergesOf(); len(got) != 1 || got[0].Kind != borges.ChangeMerge {
		t.Errorf("merges = %+v", got)
	}
}

func TestFacadeProfilesAndProviderStack(t *testing.T) {
	if borges.AllFeatures() != (borges.Features{OIDP: true, NotesAka: true, RR: true, Favicons: true}) {
		t.Error("AllFeatures mismatch")
	}
	llama := borges.NewSimulatedLLMWithProfile(borges.ProfileLlama)
	if llama.Name != "sim-llama-8b" {
		t.Errorf("profile name = %q", llama.Name)
	}
	// Compose the production stack: rate-limited caching simulated model.
	stack := borges.NewRateLimitedProvider(
		borges.NewCachingProvider(borges.NewSimulatedLLMWithProfile(borges.ProfileGPT4oMini)),
		1000, 1000)
	// Drive one classifier-style request through the whole stack.
	resp, err := stack.Complete(context.Background(), borges.LLMRequest{
		Model: "gpt-4o-mini",
		Messages: []borges.LLMMessage{{
			Role: borges.RoleUser,
			Content: "Accessing these URLs ['https://www.orange.es/', 'https://www.orange.pl/'] " +
				"returned the attached favicon. If it is a telecommunications company, what is the " +
				"company's name? Reply only with the name of the company or technology. " +
				"If it is none of the above, reply 'I don't know'.",
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Content != "Orange" {
		t.Errorf("stacked reply = %q", resp.Content)
	}
	// Second identical request is served from the cache.
	cached := borges.NewCachingProvider(borges.NewSimulatedLLM())
	req := borges.LLMRequest{Model: "m", Messages: []borges.LLMMessage{{
		Role:    borges.RoleUser,
		Content: "Accessing these URLs ['https://a.test/'] returned the attached favicon. Reply only with the name. If it is none of the above, reply 'I don't know'.",
	}}}
	if _, err := cached.Complete(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := cached.Complete(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := cached.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d/%d", hits, misses)
	}
}

func TestFacadeASNHelpers(t *testing.T) {
	a, err := borges.ParseASN("AS1.10")
	if err != nil || uint32(a) != 65546 {
		t.Errorf("ParseASN asdot: %v %v", a, err)
	}
	if _, err := borges.ParseASN("nope"); err == nil {
		t.Error("bad ASN should fail")
	}
}
