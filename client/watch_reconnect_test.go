package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestWatchReconnectBackoffAndCallback pins the Watch reconnect loop
// to the retry policy: each consecutive failed connection backs off
// exponentially from RetryBaseDelay (with the policy's jitter), and
// OnReconnect observes every reconnect with its running count.
func TestWatchReconnectBackoffAndCallback(t *testing.T) {
	// A watch endpoint that accepts the stream and immediately ends it:
	// every connection is a clean EOF the client must recover from.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/watch" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const base = 10 * time.Millisecond
	var mu sync.Mutex
	var counts []int64
	var slept []time.Duration
	c := newTestClient(t, Config{
		BaseURL:        ts.URL,
		RetryBaseDelay: base,
		RetrySeed:      7,
		OnReconnect: func(n int64, err error) {
			mu.Lock()
			counts = append(counts, n)
			mu.Unlock()
			if n >= 4 {
				cancel()
			}
		},
		sleepFn: func(ctx context.Context, d time.Duration) error {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
			return ctx.Err()
		},
	})

	err := c.Watch(ctx, 0, func(ev *WatchEvent) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Watch returned %v, want context.Canceled", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(counts) != 4 {
		t.Fatalf("OnReconnect fired %d times, want 4: %v", len(counts), counts)
	}
	for i, n := range counts {
		if n != int64(i+1) {
			t.Fatalf("OnReconnect counts = %v, want 1..4", counts)
		}
	}
	if len(slept) != 4 {
		t.Fatalf("slept %d times, want 4: %v", len(slept), slept)
	}
	for i, d := range slept {
		// Policy schedule: base·2^i, default 20% jitter shaving downward.
		hi := base << i
		lo := time.Duration(float64(hi) * 0.8)
		if d < lo || d > hi {
			t.Fatalf("backoff %d = %v, want within [%v, %v]", i+1, d, lo, hi)
		}
	}
}
