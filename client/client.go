// Package client is the Go client for a borgesd AS-to-Organization
// server. It speaks the high-throughput surfaces: point lookups are
// transparently coalesced into /v1/bulk frames (one HTTP round-trip
// answers hundreds of concurrent Lookup calls), explicit Bulk calls
// stream arbitrarily large ASN lists, and Watch follows the /v1/watch
// change stream with automatic resume after a disconnect.
//
// Every request honors the server's overload protocol: 429/503
// responses carry Retry-After hints which the client's backoff
// consumes verbatim (see internal/resilience), so a shedding server
// sees clients spread out instead of hammering through the collapse.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/nu-aqualab/borges/internal/resilience"
)

// ErrUnmapped reports that an ASN is valid but absent from the serving
// mapping.
var ErrUnmapped = errors.New("client: ASN not in mapping")

// ErrClosed reports a call on a closed client.
var ErrClosed = errors.New("client: closed")

// Org is one organization as the server renders it.
type Org struct {
	ID       int      `json:"org"`
	Name     string   `json:"name"`
	Size     int      `json:"size"`
	ASNs     []uint32 `json:"asns"`
	Features []string `json:"features"`
}

// Result is one decoded /v1/bulk response line. Exactly one of Org or
// ErrorMsg is set; Line is only set on malformed-input errors (where
// the server has no ASN to echo back).
type Result struct {
	ASN      uint32   `json:"asn"`
	Org      *Org     `json:"org"`
	Siblings []uint32 `json:"siblings"`
	ErrorMsg string   `json:"error"`
	Line     int64    `json:"line"`
}

// Err maps the per-line error object to a Go error: nil for hits,
// ErrUnmapped for known-absent ASNs, a descriptive error otherwise.
func (r *Result) Err() error {
	switch r.ErrorMsg {
	case "":
		return nil
	case "unmapped":
		return ErrUnmapped
	default:
		return fmt.Errorf("client: server error: %s", r.ErrorMsg)
	}
}

// Config tunes a Client. Only BaseURL is required.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// APIKey, when set, is sent as X-Api-Key so the server's
	// per-client rate limiting keys on it rather than the IP.
	APIKey string
	// MaxBatch caps how many coalesced Lookup calls ride in one
	// /v1/bulk frame (default 512).
	MaxBatch int
	// BatchDelay is how long the batcher lingers after the first
	// queued lookup to let a frame fill (default 2ms). Latency cost
	// for throughput: at high call rates frames fill before the timer.
	BatchDelay time.Duration
	// MaxAttempts bounds attempts per frame including retries of
	// 429/503/transport faults (default 4).
	MaxAttempts int
	// RetryBaseDelay is the first backoff when the server provided no
	// Retry-After hint (default 250ms).
	RetryBaseDelay time.Duration
	// RetrySeed makes retry jitter deterministic in tests (0 = fixed
	// default seed).
	RetrySeed int64
	// OnReconnect, when non-nil, observes every Watch stream reconnect:
	// n is the total reconnects this Watch call has performed and err
	// the disconnect that caused this one (nil for a clean server-side
	// stream close). Fleet replicas export n as a metric. The callback
	// runs on the watch goroutine before the reconnect backoff sleep —
	// keep it fast.
	OnReconnect func(n int64, err error)
	// sleepFn overrides backoff sleeping in tests.
	sleepFn func(ctx context.Context, d time.Duration) error
}

// Client is a borgesd API client. It is safe for concurrent use; the
// zero value is not usable — construct with New and release the
// batcher with Close.
type Client struct {
	cfg    Config
	http   *http.Client
	policy *resilience.Policy

	queue chan *pending

	mu     sync.Mutex
	closed bool
	done   chan struct{} // closed when the batcher exits
	cancel context.CancelFunc
}

// pending is one queued Lookup awaiting a bulk frame.
type pending struct {
	asn   uint32
	reply chan lookupReply
}

type lookupReply struct {
	org *Org
	err error
}

// New returns a client for the server at cfg.BaseURL and starts its
// background batcher.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: Config.BaseURL is required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 512
	}
	if cfg.BatchDelay <= 0 {
		cfg.BatchDelay = 2 * time.Millisecond
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = 250 * time.Millisecond
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		cfg:  cfg,
		http: hc,
		policy: &resilience.Policy{
			MaxAttempts: cfg.MaxAttempts,
			BaseDelay:   cfg.RetryBaseDelay,
			Seed:        cfg.RetrySeed,
			SleepFn:     cfg.sleepFn,
		},
		queue:  make(chan *pending, 4*cfg.MaxBatch),
		done:   make(chan struct{}),
		cancel: cancel,
	}
	go c.batchLoop(ctx)
	return c, nil
}

// Close stops the background batcher. Queued lookups fail with
// ErrClosed; in-flight frames are abandoned.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.cancel()
	<-c.done
}

// Lookup resolves one ASN. Concurrent Lookup calls are coalesced into
// shared /v1/bulk frames — point-lookup ergonomics at bulk throughput.
// An absent ASN returns ErrUnmapped.
func (c *Client) Lookup(ctx context.Context, asn uint32) (*Org, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()
	p := &pending{asn: asn, reply: make(chan lookupReply, 1)}
	select {
	case c.queue <- p:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
		return nil, ErrClosed
	}
	select {
	case rep := <-p.reply:
		return rep.org, rep.err
	case <-ctx.Done():
		// The frame will still resolve; its reply lands in the
		// buffered channel and is garbage collected with it.
		return nil, ctx.Err()
	}
}

// batchLoop drains the queue into /v1/bulk frames: the first pending
// lookup opens a frame, which ships once it holds MaxBatch lookups or
// BatchDelay elapses, whichever is first.
func (c *Client) batchLoop(ctx context.Context) {
	defer close(c.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		var first *pending
		select {
		case first = <-c.queue:
		case <-ctx.Done():
			c.failQueued(ErrClosed)
			return
		}
		frame := append(make([]*pending, 0, c.cfg.MaxBatch), first)
		timer.Reset(c.cfg.BatchDelay)
	fill:
		for len(frame) < c.cfg.MaxBatch {
			select {
			case p := <-c.queue:
				frame = append(frame, p)
			case <-timer.C:
				break fill
			case <-ctx.Done():
				for _, p := range frame {
					p.reply <- lookupReply{err: ErrClosed}
				}
				c.failQueued(ErrClosed)
				return
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		c.dispatch(ctx, frame)
	}
}

// failQueued drains any still-queued pendings with err.
func (c *Client) failQueued(err error) {
	for {
		select {
		case p := <-c.queue:
			p.reply <- lookupReply{err: err}
		default:
			return
		}
	}
}

// dispatch ships one frame as a /v1/bulk request and distributes the
// per-line results positionally: the server guarantees one output
// line per input line, in input order.
func (c *Client) dispatch(ctx context.Context, frame []*pending) {
	asns := make([]uint32, len(frame))
	for i, p := range frame {
		asns[i] = p.asn
	}
	results, err := c.Bulk(ctx, asns)
	if err == nil && len(results) != len(frame) {
		err = fmt.Errorf("client: bulk returned %d lines for %d lookups", len(results), len(frame))
	}
	if err != nil {
		for _, p := range frame {
			p.reply <- lookupReply{err: err}
		}
		return
	}
	for i, p := range frame {
		r := results[i]
		p.reply <- lookupReply{org: r.Org, err: r.Err()}
	}
}

// Bulk resolves a list of ASNs in one /v1/bulk round-trip, returning
// one Result per input in input order. Refusals (429/503) and
// transport faults are retried under the client's policy, honoring
// the server's Retry-After hints.
func (c *Client) Bulk(ctx context.Context, asns []uint32) ([]Result, error) {
	var body bytes.Buffer
	body.Grow(8 * len(asns))
	for _, a := range asns {
		b := strconv.AppendUint(body.AvailableBuffer(), uint64(a), 10)
		body.Write(append(b, '\n'))
	}
	var results []Result
	err := c.policy.Do(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+"/v1/bulk", bytes.NewReader(body.Bytes()))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		c.setAuth(req)
		resp, err := c.http.Do(req)
		if err != nil {
			return resilience.MarkTransient(err)
		}
		defer resp.Body.Close()
		if err := checkStatus(resp); err != nil {
			return err
		}
		results, err = decodeNDJSON(resp.Body, len(asns))
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// setAuth attaches the configured API key.
func (c *Client) setAuth(req *http.Request) {
	if c.cfg.APIKey != "" {
		req.Header.Set("X-Api-Key", c.cfg.APIKey)
	}
}

// checkStatus turns a non-200 response into an error; 429/503 become
// transient StatusErrors carrying the server's Retry-After hint so the
// retry policy backs off exactly as long as the server asked.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	// Drain so the connection can be reused after the error.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		return &resilience.StatusError{
			Code:       resp.StatusCode,
			RetryAfter: resilience.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()),
		}
	}
	return fmt.Errorf("client: server returned %s", resp.Status)
}

// decodeNDJSON parses a bulk response stream. sizeHint is the expected
// line count (capacity only, not enforced).
func decodeNDJSON(r io.Reader, sizeHint int) ([]Result, error) {
	results := make([]Result, 0, sizeHint)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var res Result
		if err := json.Unmarshal(line, &res); err != nil {
			return nil, fmt.Errorf("client: bad bulk response line: %w", err)
		}
		if res.ErrorMsg != "" && !bytes.Contains(line, []byte(`"asn"`)) && !bytes.Contains(line, []byte(`"line"`)) {
			// A terminal stream error ({"error":"line cap exceeded"} /
			// {"error":"body too large"}) rather than a per-line object,
			// which always echoes the ASN or the input line number.
			return nil, fmt.Errorf("client: bulk stream ended: %s", res.ErrorMsg)
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, resilience.MarkTransient(fmt.Errorf("client: bulk stream: %w", err))
	}
	return results, nil
}
