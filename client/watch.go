package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/nu-aqualab/borges/internal/resilience"
	"github.com/nu-aqualab/borges/internal/serve"
)

// WatchEvent is one snapshot-change event from /v1/watch: the new
// snapshot's identity plus the mapdiff edit script that produced it.
type WatchEvent = serve.WatchEvent

// Watch follows the server's /v1/watch change stream, invoking fn for
// every reload event in order. It reconnects after disconnects and
// server restarts, resuming from the last delivered sequence number
// via ?since= so no event is delivered twice and none is silently
// skipped while the server's replay ring covers the gap. Watch
// returns when ctx is cancelled (ctx.Err()) or fn returns a non-nil
// error (that error).
//
// since is the sequence number to resume after; 0 starts from the
// next change.
func (c *Client) Watch(ctx context.Context, since uint64, fn func(ev *WatchEvent) error) error {
	sleep := c.cfg.sleepFn
	if sleep == nil {
		sleep = resilience.Sleep
	}
	last := since
	fails := 0 // consecutive reconnects without a delivered event
	var reconnects int64
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		delivered, err := c.watchOnce(ctx, last, fn, &last)
		if err != nil && ctx.Err() == nil {
			if fnErr, ok := err.(*watchCallbackError); ok {
				return fnErr.err
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// Disconnected (server restart, eviction, network). Back off
		// under the retry policy — exponential from RetryBaseDelay,
		// capped, jittered so a fleet of replicas spreads out, honoring
		// any Retry-After the refusal carried — and resume. A stream
		// that delivered events restarts the schedule: the server was
		// healthy, the drop is fresh.
		if delivered {
			fails = 0
		}
		fails++
		reconnects++
		if c.cfg.OnReconnect != nil {
			c.cfg.OnReconnect(reconnects, err)
		}
		if serr := sleep(ctx, c.policy.Backoff(fails, err)); serr != nil {
			return serr
		}
	}
}

// watchCallbackError wraps an error returned by the subscriber's fn,
// distinguishing "stop watching" from transport failures.
type watchCallbackError struct{ err error }

func (e *watchCallbackError) Error() string { return e.err.Error() }

// watchOnce runs one /v1/watch connection until it drops, delivering
// events to fn and advancing *last. delivered reports whether any
// event arrived (used to reset the reconnect backoff).
func (c *Client) watchOnce(ctx context.Context, since uint64, fn func(ev *WatchEvent) error, last *uint64) (delivered bool, err error) {
	url := c.cfg.BaseURL + "/v1/watch"
	if since > 0 {
		url += "?since=" + strconv.FormatUint(since, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	c.setAuth(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return false, resilience.MarkTransient(err)
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return false, err
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var event string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Blank line terminates one SSE event.
			if event == "reload" && len(data) > 0 {
				var ev WatchEvent
				if err := json.Unmarshal(data, &ev); err != nil {
					return delivered, fmt.Errorf("client: bad watch event: %w", err)
				}
				if ev.Seq > *last {
					if err := fn(&ev); err != nil {
						return delivered, &watchCallbackError{err: err}
					}
					*last = ev.Seq
					delivered = true
				}
			}
			event, data = "", nil
		case len(line) > 7 && line[:7] == "event: ":
			event = line[7:]
		case len(line) > 6 && line[:6] == "data: ":
			data = append([]byte(nil), line[6:]...)
		default:
			// id: lines and ": keepalive" comments need no handling —
			// the sequence number rides inside the event JSON.
		}
	}
	if err := sc.Err(); err != nil {
		return delivered, resilience.MarkTransient(err)
	}
	return delivered, nil // clean EOF: server shut the stream down
}
