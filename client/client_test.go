package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nu-aqualab/borges/internal/asnum"
	"github.com/nu-aqualab/borges/internal/cluster"
	"github.com/nu-aqualab/borges/internal/serve"
)

// newBackend starts a real borgesd handler over the small fixed
// mapping: Lumen {209,3356,3549} and Claro Chile {27995}; 64512 is
// absent from the universe, so it resolves as unmapped.
func newBackend(t *testing.T, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	b := cluster.NewBuilder()
	b.AddUniverse(209, 3356, 3549, 27995)
	b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{209, 3356, 3549}, Source: cluster.FeatureOIDW})
	b.Add(cluster.SiblingSet{ASNs: []asnum.ASN{27995}, Source: cluster.FeatureOIDW})
	m := b.Build(func(members []asnum.ASN) string {
		if members[0] == 27995 {
			return "Claro Chile"
		}
		return "Lumen Technologies"
	})
	snap, err := serve.NewSnapshot(m, "client-test")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// waitSubscribed blocks until the server sees a live /v1/watch stream
// — events published before the subscription would not be delivered.
func waitSubscribed(t *testing.T, srv *serve.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.WatchSubscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watch never connected")
		}
		time.Sleep(time.Millisecond)
	}
}

func newTestClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestLookupBatching: concurrent Lookup calls must coalesce into far
// fewer /v1/bulk requests than lookups, and every caller still gets
// its own correct answer.
func TestLookupBatching(t *testing.T) {
	srv, ts := newBackend(t, serve.Options{})
	c := newTestClient(t, Config{BaseURL: ts.URL, BatchDelay: 20 * time.Millisecond})

	const callers = 64
	asns := []uint32{209, 3356, 3549, 27995}
	var wg sync.WaitGroup
	errs := make([]error, callers)
	orgs := make([]*Org, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			orgs[i], errs[i] = c.Lookup(context.Background(), asns[i%len(asns)])
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("lookup %d: %v", i, errs[i])
		}
		want := "Lumen Technologies"
		if asns[i%len(asns)] == 27995 {
			want = "Claro Chile"
		}
		if orgs[i] == nil || orgs[i].Name != want {
			t.Fatalf("lookup %d: org = %+v, want %s", i, orgs[i], want)
		}
	}
	requests, lines, _ := srv.Metrics().BulkTotals()
	if lines != callers {
		t.Errorf("server saw %d bulk lines, want %d", lines, callers)
	}
	if requests >= callers/2 {
		t.Errorf("batching ineffective: %d bulk requests for %d lookups", requests, callers)
	}
}

// TestLookupUnmapped maps the server's per-line miss to ErrUnmapped.
func TestLookupUnmapped(t *testing.T) {
	_, ts := newBackend(t, serve.Options{})
	c := newTestClient(t, Config{BaseURL: ts.URL, BatchDelay: time.Millisecond})
	if _, err := c.Lookup(context.Background(), 64512); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped lookup error = %v, want ErrUnmapped", err)
	}
}

// TestBulkOrder: results come back positionally, including misses.
func TestBulkOrder(t *testing.T) {
	_, ts := newBackend(t, serve.Options{})
	c := newTestClient(t, Config{BaseURL: ts.URL})
	in := []uint32{3549, 64512, 27995, 209}
	results, err := c.Bulk(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(in) {
		t.Fatalf("got %d results, want %d", len(results), len(in))
	}
	var got []uint32
	for _, r := range results {
		got = append(got, r.ASN)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("result order %v, want %v", got, in)
	}
	if results[1].Err() != ErrUnmapped || results[0].Err() != nil {
		t.Fatalf("per-line errors wrong: %v, %v", results[0].Err(), results[1].Err())
	}
	if results[2].Org == nil || results[2].Org.Name != "Claro Chile" {
		t.Fatalf("results[2].Org = %+v", results[2].Org)
	}
	if !reflect.DeepEqual(results[0].Siblings, []uint32{209, 3356, 3549}) {
		t.Fatalf("siblings = %v", results[0].Siblings)
	}
}

// TestRetryAfterBackoff: a 503 carrying Retry-After must make the
// client sleep what the server asked (modulo the policy's 20% spread),
// then succeed on the retry — the full shed protocol, server header to
// client sleep.
func TestRetryAfterBackoff(t *testing.T) {
	_, real := newBackend(t, serve.Options{})
	var calls atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			http.Error(w, "shed", http.StatusServiceUnavailable)
			return
		}
		r2, err := http.NewRequest(r.Method, real.URL+r.URL.String(), r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := http.DefaultClient.Do(r2)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		for {
			var buf [4096]byte
			n, rerr := resp.Body.Read(buf[:])
			if n > 0 {
				w.Write(buf[:n])
			}
			if rerr != nil {
				return
			}
		}
	}))
	defer proxy.Close()

	var slept []time.Duration
	c := newTestClient(t, Config{
		BaseURL: proxy.URL,
		sleepFn: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	})
	results, err := c.Bulk(context.Background(), []uint32{3356})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Err() != nil {
		t.Fatalf("results after retry = %+v", results)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (shed + retry)", got)
	}
	if len(slept) != 1 {
		t.Fatalf("client slept %d times (%v), want once", len(slept), slept)
	}
	// hint=3s, default jitter 0.2 → d ∈ [2.4s, 3s].
	if slept[0] < 2400*time.Millisecond || slept[0] > 3*time.Second {
		t.Errorf("backoff = %v, want within [2.4s, 3s] of the Retry-After hint", slept[0])
	}
}

// TestBulkNonRetryableStatus: a 404 is not transient and must not be
// retried.
func TestBulkNonRetryableStatus(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.NotFound(w, r)
	}))
	defer ts.Close()
	c := newTestClient(t, Config{BaseURL: ts.URL, sleepFn: func(context.Context, time.Duration) error { return nil }})
	if _, err := c.Bulk(context.Background(), []uint32{1}); err == nil {
		t.Fatal("404 produced no error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retry on 404)", got)
	}
}

// TestClientClosed: Close is idempotent and later Lookups refuse.
func TestClientClosed(t *testing.T) {
	_, ts := newBackend(t, serve.Options{})
	c, err := New(Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close()
	if _, err := c.Lookup(context.Background(), 3356); !errors.Is(err, ErrClosed) {
		t.Fatalf("lookup after close = %v, want ErrClosed", err)
	}
}

// TestWatchClient follows a real server's reload stream, then stops on
// context cancellation.
func TestWatchClient(t *testing.T) {
	const n = 24
	v := 0
	b := func() *cluster.Mapping {
		bld := cluster.NewBuilder()
		for a := 1; a <= n; a++ {
			bld.AddUniverse(asnum.ASN(a))
		}
		run := v%3 + 2
		for i := 0; i < n; i += run {
			end := min(i+run, n)
			set := cluster.SiblingSet{Source: cluster.FeatureOIDW}
			for a := i + 1; a <= end; a++ {
				set.ASNs = append(set.ASNs, asnum.ASN(a))
			}
			bld.Add(set)
		}
		return bld.Build(func(members []asnum.ASN) string {
			return fmt.Sprintf("Org v%d #%d", v, members[0])
		})
	}
	snap, err := serve.NewSnapshot(b(), "watch-test")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(snap, serve.Options{
		Source: func(ctx context.Context) (*cluster.Mapping, error) { return b(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := newTestClient(t, Config{BaseURL: ts.URL})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan *WatchEvent, 8)
	watchErr := make(chan error, 1)
	go func() {
		watchErr <- c.Watch(ctx, 0, func(ev *WatchEvent) error {
			events <- ev
			return nil
		})
	}()

	waitSubscribed(t, srv)
	v = 1
	if _, err := srv.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Seq != 1 || ev.Delta == nil {
			t.Fatalf("event = %+v, want seq 1 with delta", ev)
		}
		if ev.ContentHash != srv.Snapshot().ContentHash() {
			t.Fatalf("event hash %q, want %q", ev.ContentHash, srv.Snapshot().ContentHash())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reload event never delivered")
	}

	cancel()
	select {
	case err := <-watchErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Watch returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Watch did not return after cancel")
	}
}

// TestWatchCallbackError: fn's error stops the watch and surfaces.
func TestWatchCallbackError(t *testing.T) {
	const n = 12
	v := 0
	build := func() *cluster.Mapping {
		bld := cluster.NewBuilder()
		for a := 1; a <= n; a++ {
			bld.AddUniverse(asnum.ASN(a))
		}
		bld.Add(cluster.SiblingSet{ASNs: []asnum.ASN{1, asnum.ASN(2 + v%2)}, Source: cluster.FeatureOIDW})
		return bld.Build(func(members []asnum.ASN) string { return fmt.Sprintf("Org v%d", v) })
	}
	snap, err := serve.NewSnapshot(build(), "watch-test")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(snap, serve.Options{
		Source: func(ctx context.Context) (*cluster.Mapping, error) { return build(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := newTestClient(t, Config{BaseURL: ts.URL})
	stop := errors.New("stop here")
	watchErr := make(chan error, 1)
	go func() {
		watchErr <- c.Watch(context.Background(), 0, func(ev *WatchEvent) error {
			return stop
		})
	}()
	waitSubscribed(t, srv)
	v = 1
	if _, err := srv.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-watchErr:
		if !errors.Is(err, stop) {
			t.Fatalf("Watch returned %v, want the callback's error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Watch did not stop on callback error")
	}
}
